//! Crash-bundle flight recorder.
//!
//! When a worker panics or checked mode reports a soundness violation,
//! the server captures everything needed to re-execute the failing
//! request deterministically in-process: the program source and its
//! hash, the admission epoch, the raw request line (which embeds the
//! fault plan, seed, and fuel knobs), and a snapshot of the server
//! configuration that shaped execution. Bundles are written to a bounded
//! on-disk ring (`crash-NNNNNN.json`, oldest pruned first) with
//! write-to-temp-then-rename so a crash mid-write never leaves a torn
//! bundle. `nmlc replay BUNDLE` re-executes one (see [`crate::replay`]).
//!
//! This is **bundle format v1**: a single JSON object with a `version`
//! field; readers reject other versions rather than guessing.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::server::ServeConfig;

/// Snapshot of the [`ServeConfig`] fields that affect execution of one
/// request, embedded in a bundle so replay reconstructs the same engine.
///
/// Deliberately excluded: socket/queue/worker topology (replay is
/// in-process and single-threaded) and the wall-clock deadline (replay
/// must be deterministic; fuel is the deterministic stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleConfig {
    /// Checked (soundness-verifying) heap mode.
    pub checked: bool,
    /// Whether the escape-directed optimizer ran.
    pub optimize: bool,
    /// Quarantine-recompile retry limit.
    pub max_retries: u32,
    /// Interpreter depth limit override.
    pub max_depth: Option<usize>,
    /// Deadline→fuel conversion rate.
    pub steps_per_ms: u64,
    /// Server-default fuel for requests that specify none.
    pub default_fuel: Option<u64>,
    /// Server-default deadline for requests that specify none.
    pub default_timeout_ms: Option<u64>,
    /// Generational heap enabled.
    pub gen_gc: bool,
    /// Nursery size (KiB) when generational.
    pub nursery_kb: usize,
    /// Sites force-stacked by the sabotage plan (test harness knob).
    pub sabotage: Vec<u32>,
    /// Sites quarantined in the admission epoch when the crash happened.
    pub quarantine: Vec<u32>,
    /// Analysis budget: max Kleene passes (`None` = unlimited).
    pub budget_passes: Option<u64>,
    /// Analysis budget: max nodes visited (`None` = unlimited).
    pub budget_nodes: Option<u64>,
}

/// A replayable crash capture. See the module docs for the format story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashBundle {
    /// Format version; always 1.
    pub version: u32,
    /// `"worker_panicked"` or `"soundness_violation"`.
    pub kind: String,
    /// Stable crash signature (panic message, or `owner#ordinal` + claim
    /// for soundness violations). Repeats of one signature escalate to a
    /// server-wide quarantine of the site.
    pub signature: String,
    /// Admission epoch of the crashing request.
    pub epoch: u64,
    /// FNV-1a hash of `src`, as 16 hex digits (u64 can overflow JSON's
    /// integer range, so it travels as a string).
    pub program_hash: String,
    /// Full program source of the admission epoch.
    pub src: String,
    /// The raw request line, verbatim — it embeds the fault plan, seed,
    /// fuel, and deadline, so replay needs no private runtime state.
    pub request: String,
    /// Crash site as a raw id in the admission epoch's numbering, when
    /// attributable (soundness violations carry one; panics may not).
    pub site: Option<u32>,
    /// Execution-shaping configuration snapshot.
    pub config: BundleConfig,
    /// Interpreter steps retired by the worker before the crash, if known.
    pub steps: u64,
}

impl BundleConfig {
    /// Captures the execution-relevant slice of a live config.
    pub fn capture(cfg: &ServeConfig, quarantine: Vec<u32>) -> BundleConfig {
        BundleConfig {
            checked: cfg.checked,
            optimize: cfg.optimize,
            max_retries: cfg.max_retries,
            max_depth: cfg.max_depth,
            steps_per_ms: cfg.steps_per_ms,
            default_fuel: cfg.default_fuel,
            default_timeout_ms: cfg.default_timeout_ms,
            gen_gc: cfg.gen_gc,
            nursery_kb: cfg.nursery_kb,
            sabotage: cfg.sabotage.stack_sites.iter().map(|s| s.0).collect(),
            quarantine,
            budget_passes: budget_opt(cfg.budget.max_passes as u64, u32::MAX as u64),
            budget_nodes: budget_opt(cfg.budget.max_nodes, u64::MAX),
        }
    }
}

fn budget_opt(v: u64, unlimited: u64) -> Option<u64> {
    if v == unlimited {
        None
    } else {
        Some(v)
    }
}

fn int(v: u64) -> Json {
    Json::Int(v as i64)
}

fn opt_int(v: Option<u64>) -> Json {
    match v {
        Some(v) => int(v),
        None => Json::Null,
    }
}

fn sites(v: &[u32]) -> Json {
    Json::Arr(v.iter().map(|s| Json::Int(*s as i64)).collect())
}

impl CrashBundle {
    /// Serializes the bundle as its on-disk JSON object.
    pub fn to_json(&self) -> Json {
        let c = &self.config;
        let config = Json::Obj(vec![
            ("checked".into(), Json::Bool(c.checked)),
            ("optimize".into(), Json::Bool(c.optimize)),
            ("max_retries".into(), int(c.max_retries as u64)),
            ("max_depth".into(), opt_int(c.max_depth.map(|d| d as u64))),
            ("steps_per_ms".into(), int(c.steps_per_ms)),
            ("default_fuel".into(), opt_int(c.default_fuel)),
            ("default_timeout_ms".into(), opt_int(c.default_timeout_ms)),
            ("gen_gc".into(), Json::Bool(c.gen_gc)),
            ("nursery_kb".into(), int(c.nursery_kb as u64)),
            ("sabotage".into(), sites(&c.sabotage)),
            ("quarantine".into(), sites(&c.quarantine)),
            ("budget_passes".into(), opt_int(c.budget_passes)),
            ("budget_nodes".into(), opt_int(c.budget_nodes)),
        ]);
        Json::Obj(vec![
            ("version".into(), int(self.version as u64)),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("signature".into(), Json::Str(self.signature.clone())),
            ("epoch".into(), int(self.epoch)),
            ("program_hash".into(), Json::Str(self.program_hash.clone())),
            ("src".into(), Json::Str(self.src.clone())),
            ("request".into(), Json::Str(self.request.clone())),
            ("site".into(), opt_int(self.site.map(|s| s as u64))),
            ("config".into(), config),
            ("steps".into(), int(self.steps)),
        ])
    }

    /// Parses a bundle from its JSON form, rejecting unknown versions.
    pub fn from_json(j: &Json) -> Result<CrashBundle, String> {
        let version = field_u64(j, "version")? as u32;
        if version != 1 {
            return Err(format!("unsupported bundle version {version} (expected 1)"));
        }
        let c = j.get("config").ok_or("bundle missing 'config'")?;
        let config = BundleConfig {
            checked: field_bool(c, "checked")?,
            optimize: field_bool(c, "optimize")?,
            max_retries: field_u64(c, "max_retries")? as u32,
            max_depth: opt_field_u64(c, "max_depth")?.map(|d| d as usize),
            steps_per_ms: field_u64(c, "steps_per_ms")?,
            default_fuel: opt_field_u64(c, "default_fuel")?,
            default_timeout_ms: opt_field_u64(c, "default_timeout_ms")?,
            gen_gc: field_bool(c, "gen_gc")?,
            nursery_kb: field_u64(c, "nursery_kb")? as usize,
            sabotage: field_sites(c, "sabotage")?,
            quarantine: field_sites(c, "quarantine")?,
            budget_passes: opt_field_u64(c, "budget_passes")?,
            budget_nodes: opt_field_u64(c, "budget_nodes")?,
        };
        Ok(CrashBundle {
            version,
            kind: field_str(j, "kind")?,
            signature: field_str(j, "signature")?,
            epoch: field_u64(j, "epoch")?,
            program_hash: field_str(j, "program_hash")?,
            src: field_str(j, "src")?,
            request: field_str(j, "request")?,
            site: opt_field_u64(j, "site")?.map(|s| s as u32),
            config,
            steps: field_u64(j, "steps")?,
        })
    }

    /// Reads and parses a bundle file.
    pub fn load(path: &Path) -> Result<CrashBundle, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let j = crate::json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        CrashBundle::from_json(&j)
    }
}

fn field_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| format!("bundle missing string '{key}'"))
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(|v| v.as_int())
        .filter(|v| *v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("bundle missing integer '{key}'"))
}

fn opt_field_u64(j: &Json, key: &str) -> Result<Option<u64>, String> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_int()
            .filter(|v| *v >= 0)
            .map(|v| Some(v as u64))
            .ok_or_else(|| format!("bundle field '{key}' is not an integer")),
    }
}

fn field_bool(j: &Json, key: &str) -> Result<bool, String> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("bundle missing boolean '{key}'")),
    }
}

fn field_sites(j: &Json, key: &str) -> Result<Vec<u32>, String> {
    let arr = j
        .get(key)
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("bundle missing array '{key}'"))?;
    arr.iter()
        .map(|v| {
            v.as_int()
                .filter(|v| *v >= 0 && *v <= u32::MAX as i64)
                .map(|v| v as u32)
                .ok_or_else(|| format!("bundle array '{key}' holds a non-site value"))
        })
        .collect()
}

/// Bounded on-disk ring of crash bundles.
///
/// Files are named `crash-NNNNNN.json` with a monotonically increasing
/// sequence number; when the ring exceeds its capacity the lowest
/// numbers are pruned. A fresh ring resumes numbering after any bundles
/// already present in the directory.
#[derive(Debug)]
pub struct BundleRing {
    dir: PathBuf,
    cap: usize,
    next_seq: u64,
}

impl BundleRing {
    /// Opens (creating if needed) a ring in `dir` holding at most `cap`
    /// bundles. `cap` is clamped to at least 1.
    pub fn new(dir: impl Into<PathBuf>, cap: usize) -> io::Result<BundleRing> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_seq = existing_seqs(&dir).last().map_or(0, |s| s + 1);
        Ok(BundleRing {
            dir,
            cap: cap.max(1),
            next_seq,
        })
    }

    /// The ring directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a bundle atomically (temp file + rename) and prunes the
    /// oldest entries past capacity. Returns the bundle's path.
    pub fn push(&mut self, bundle: &CrashBundle) -> io::Result<PathBuf> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let name = format!("crash-{seq:06}.json");
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let path = self.dir.join(&name);
        fs::write(&tmp, format!("{}\n", bundle.to_json()))?;
        fs::rename(&tmp, &path)?;
        let seqs = existing_seqs(&self.dir);
        if seqs.len() > self.cap {
            for old in &seqs[..seqs.len() - self.cap] {
                let _ = fs::remove_file(self.dir.join(format!("crash-{old:06}.json")));
            }
        }
        Ok(path)
    }
}

/// Sorted sequence numbers of the bundles currently in `dir`.
fn existing_seqs(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("crash-")
                .and_then(|n| n.strip_suffix(".json"))
            {
                if let Ok(seq) = num.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
    }
    seqs.sort_unstable();
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrashBundle {
        CrashBundle {
            version: 1,
            kind: "worker_panicked".into(),
            signature: "fault: injected panic".into(),
            epoch: 3,
            program_hash: format!("{:016x}", u64::MAX - 1),
            src: "letrec id x = x in id 1".into(),
            request: "{\"op\":\"eval\",\"id\":7,\"fault\":{\"panic_at_alloc\":2}}".into(),
            site: Some(4),
            config: BundleConfig {
                checked: true,
                optimize: true,
                max_retries: 4,
                max_depth: None,
                steps_per_ms: 200_000,
                default_fuel: Some(1_000_000),
                default_timeout_ms: None,
                gen_gc: false,
                nursery_kb: 256,
                sabotage: vec![0, 1, 2],
                quarantine: vec![5],
                budget_passes: None,
                budget_nodes: Some(1 << 20),
            },
            steps: 42,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = sample();
        let j = b.to_json();
        let back = CrashBundle::from_json(&j).expect("parses");
        assert_eq!(b, back);
        // And through the textual form (hash exceeding i64 survives as a
        // string; this is why program_hash is not a JSON integer).
        let text = j.to_string();
        let reparsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(CrashBundle::from_json(&reparsed).expect("parses"), b);
    }

    #[test]
    fn rejects_unknown_versions() {
        let mut b = sample();
        b.version = 2;
        let err = CrashBundle::from_json(&b.to_json()).unwrap_err();
        assert!(err.contains("version 2"), "got: {err}");
    }

    #[test]
    fn ring_prunes_oldest_and_resumes_numbering() {
        let dir = std::env::temp_dir().join(format!("nml-ring-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let b = sample();
        {
            let mut ring = BundleRing::new(&dir, 2).expect("ring");
            for _ in 0..3 {
                ring.push(&b).expect("push");
            }
        }
        let seqs = existing_seqs(&dir);
        assert_eq!(seqs, vec![1, 2], "oldest pruned");
        // A reopened ring continues after the surviving bundles.
        let mut ring = BundleRing::new(&dir, 2).expect("reopen");
        let p = ring.push(&b).expect("push");
        assert!(p.ends_with("crash-000003.json"), "got {}", p.display());
        assert_eq!(existing_seqs(&dir), vec![2, 3]);
        let loaded = CrashBundle::load(&p).expect("load");
        assert_eq!(loaded, b);
        let _ = fs::remove_dir_all(&dir);
    }
}
