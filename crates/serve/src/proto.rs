//! The newline-delimited JSON protocol.
//!
//! Every request line gets **exactly one** terminal response line; the
//! failure taxonomy is part of the protocol, so a client can always
//! tell a guest-program failure (`runtime_error`, `fuel_exhausted`)
//! from a server condition (`overloaded`, `worker_panicked`,
//! `shutting_down`) and decide whether to retry.
//!
//! Requests:
//!
//! ```text
//! {"op":"eval","id":1,"call":"f","args":[[1,2,3]],"fuel":100000}
//! {"op":"eval","id":2}                      // run the program body
//! {"op":"ping","id":3}
//! {"op":"stats","id":4}
//! {"op":"healthz","id":5}                   // cheap inline health probe
//! {"op":"reload","id":6}                    // re-read the source file
//! {"op":"reload","id":7,"src":"..."}        // reload from inline source
//! {"op":"shutdown","id":8,"mode":"drain"}   // or "now"
//! ```
//!
//! Responses (`epoch` appears on responses produced by a worker, naming
//! the program version the request ran under):
//!
//! ```text
//! {"id":1,"status":"ok","result":"[3, 2, 1]","steps":812,"degraded":false,"epoch":1}
//! {"id":2,"status":"error","kind":"fuel_exhausted","message":"...","epoch":2}
//! {"id":7,"status":"error","kind":"compile_error","message":"..."}
//! {"id":null,"status":"error","kind":"bad_request","message":"..."}
//! ```

use crate::json::Json;
use nml_runtime::{FaultPlan, FaultRate, RuntimeError};

/// One `eval` request.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Client-chosen correlation id (echoed verbatim in the response).
    pub id: Option<i64>,
    /// Top-level function to call; `None` runs the program body.
    pub call: Option<String>,
    /// Arguments (integers, booleans, and nested arrays-as-lists).
    pub args: Vec<Json>,
    /// Explicit step budget for this request.
    pub fuel: Option<u64>,
    /// Wall-clock deadline, mapped to fuel by the server's
    /// steps-per-millisecond calibration. `fuel` wins if both are set.
    pub timeout_ms: Option<u64>,
    /// Per-request fault plan (chaos testing).
    pub fault: FaultPlan,
}

/// Any parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute a call (or the program body) on a worker.
    Eval(EvalRequest),
    /// Liveness probe, answered inline by the reader.
    Ping {
        /// Correlation id.
        id: Option<i64>,
    },
    /// Server-counter snapshot, answered inline by the reader.
    Stats {
        /// Correlation id.
        id: Option<i64>,
    },
    /// Cheap inline health probe: answered by the reader thread even
    /// when every worker is busy, so clients (and their circuit
    /// breakers) can distinguish "alive but saturated" from "dead".
    Healthz {
        /// Correlation id.
        id: Option<i64>,
    },
    /// Hot-reload the program: validate and re-analyze `src` (or the
    /// server's source file when absent), then atomically swap in a new
    /// epoch. Broken edits answer `compile_error` and change nothing.
    Reload {
        /// Correlation id.
        id: Option<i64>,
        /// Inline replacement source; `None` re-reads the source file.
        src: Option<String>,
    },
    /// Graceful (`now = false`) or immediate (`now = true`) shutdown.
    Shutdown {
        /// Correlation id.
        id: Option<i64>,
        /// `true` cancels in-flight work; `false` drains it first.
        now: bool,
    },
}

/// Parses one request frame. The id is extracted even when the rest of
/// the frame is malformed, so the error response still correlates.
///
/// # Errors
///
/// `(id, message)` for any malformed frame.
pub fn parse_request(line: &str) -> Result<Request, (Option<i64>, String)> {
    let v = crate::json::parse(line).map_err(|e| (None, e))?;
    let id = v.get("id").and_then(Json::as_int);
    let fail = |msg: String| (id, msg);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing `op`".to_owned()))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "healthz" => Ok(Request::Healthz { id }),
        "reload" => {
            let src = match v.get("src") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(fail("`src` must be a string".to_owned())),
            };
            Ok(Request::Reload { id, src })
        }
        "shutdown" => {
            let now = match v.get("mode").and_then(Json::as_str) {
                None | Some("drain") => false,
                Some("now") => true,
                Some(other) => return Err(fail(format!("unknown shutdown mode `{other}`"))),
            };
            Ok(Request::Shutdown { id, now })
        }
        "eval" => {
            let call = match v.get("call") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(fail("`call` must be a string".to_owned())),
            };
            let args = match v.get("args") {
                None => Vec::new(),
                Some(Json::Arr(items)) => items.clone(),
                Some(_) => return Err(fail("`args` must be an array".to_owned())),
            };
            let fuel = parse_u64_field(&v, "fuel").map_err(&fail)?;
            let timeout_ms = parse_u64_field(&v, "timeout_ms").map_err(&fail)?;
            let fault = match v.get("fault") {
                None => FaultPlan::default(),
                Some(obj) => parse_fault(obj).map_err(&fail)?,
            };
            Ok(Request::Eval(EvalRequest {
                id,
                call,
                args,
                fuel,
                timeout_ms,
                fault,
            }))
        }
        other => Err(fail(format!("unknown op `{other}`"))),
    }
}

fn parse_u64_field(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("`{key}` must be a non-negative integer")),
    }
}

/// Parses a per-request fault plan:
/// `{"seed":N,"panic_at_alloc":N,"heap_capacity":N,"alloc_retreat":[n,d],
///   "region_deny":[n,d],"forced_gc":[n,d],"forced_gc_at":[i,...]}`.
fn parse_fault(v: &Json) -> Result<FaultPlan, String> {
    let seed = parse_u64_field(v, "seed")?.unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    if let Some(n) = parse_u64_field(v, "panic_at_alloc")? {
        plan = plan.with_panic_at_alloc(n);
    }
    if let Some(n) = parse_u64_field(v, "heap_capacity")? {
        plan = plan.with_heap_capacity(n);
    }
    if let Some(r) = parse_rate(v, "alloc_retreat")? {
        plan = plan.with_alloc_retreats(r);
    }
    if let Some(r) = parse_rate(v, "region_deny")? {
        plan = plan.with_region_denials(r);
    }
    if let Some(r) = parse_rate(v, "forced_gc")? {
        plan = plan.with_forced_gc(r);
    }
    if let Some(list) = v.get("forced_gc_at") {
        let items = list
            .as_arr()
            .ok_or_else(|| "`forced_gc_at` must be an array".to_owned())?;
        let mut at = Vec::with_capacity(items.len());
        for it in items {
            match it.as_int() {
                Some(n) if n >= 0 => at.push(n as u64),
                _ => return Err("`forced_gc_at` entries must be non-negative".to_owned()),
            }
        }
        plan = plan.with_forced_gc_at(at);
    }
    Ok(plan)
}

fn parse_rate(v: &Json, key: &str) -> Result<Option<FaultRate>, String> {
    match v.get(key) {
        None => Ok(None),
        // Bounds-check both legs before narrowing: `4294967296 as u32`
        // is 0, which would slip a zero denominator past the guard and
        // panic in `FaultRate::new` on the reader thread.
        Some(Json::Arr(nd)) => match nd.as_slice() {
            [Json::Int(n), Json::Int(d)]
                if (0..=i64::from(u32::MAX)).contains(n)
                    && (1..=i64::from(u32::MAX)).contains(d) =>
            {
                Ok(Some(FaultRate::new(*n as u32, *d as u32)))
            }
            _ => Err(format!(
                "`{key}` must be [numerator, denominator>0], both <= u32::MAX"
            )),
        },
        Some(_) => Err(format!(
            "`{key}` must be [numerator, denominator>0], both <= u32::MAX"
        )),
    }
}

/// The protocol's failure taxonomy. `Display` gives the wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or ill-formed frame; the request never ran.
    BadRequest,
    /// The admission queue was full; the request was shed, not run.
    Overloaded,
    /// The server is draining; the request was not admitted.
    ShuttingDown,
    /// A worker panicked on this request; the worker was replaced.
    WorkerPanicked,
    /// The request's fuel budget ran out.
    FuelExhausted,
    /// The request exceeded the call-depth limit.
    StackOverflow,
    /// The request was cancelled (immediate shutdown).
    Cancelled,
    /// A reload was rejected: the new source did not parse, type, or
    /// analyze. The previous epoch stays live.
    CompileError,
    /// Any other typed guest-program failure.
    Runtime,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::WorkerPanicked => "worker_panicked",
            ErrorKind::FuelExhausted => "fuel_exhausted",
            ErrorKind::StackOverflow => "stack_overflow",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::CompileError => "compile_error",
            ErrorKind::Runtime => "runtime_error",
        }
    }

    /// The inverse of [`ErrorKind::wire`].
    pub fn from_wire(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "shutting_down" => ErrorKind::ShuttingDown,
            "worker_panicked" => ErrorKind::WorkerPanicked,
            "fuel_exhausted" => ErrorKind::FuelExhausted,
            "stack_overflow" => ErrorKind::StackOverflow,
            "cancelled" => ErrorKind::Cancelled,
            "compile_error" => ErrorKind::CompileError,
            "runtime_error" => ErrorKind::Runtime,
            _ => return None,
        })
    }

    /// Maps a guest-program failure onto the taxonomy.
    pub fn of_runtime(e: &RuntimeError) -> ErrorKind {
        match e {
            RuntimeError::FuelExhausted { .. } => ErrorKind::FuelExhausted,
            RuntimeError::StackOverflow { .. } => ErrorKind::StackOverflow,
            RuntimeError::Cancelled => ErrorKind::Cancelled,
            _ => ErrorKind::Runtime,
        }
    }

    /// The `nmlc call` process exit code for this kind: the whole
    /// taxonomy maps to distinct nonzero codes (0 is success, 1 is a
    /// transport/usage failure), so scripts can branch on the outcome
    /// without parsing stderr.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::BadRequest => 2,
            ErrorKind::Overloaded => 3,
            ErrorKind::ShuttingDown => 4,
            ErrorKind::WorkerPanicked => 5,
            ErrorKind::FuelExhausted => 6,
            ErrorKind::StackOverflow => 7,
            ErrorKind::Cancelled => 8,
            ErrorKind::Runtime => 9,
            ErrorKind::CompileError => 10,
        }
    }

    /// Whether a request answered with this kind is safe to retry: the
    /// request either never ran (`overloaded`, `shutting_down` is *not*
    /// retryable — the server is going away) or died before producing
    /// an effect (`worker_panicked`). Deterministic guest failures
    /// (`runtime_error`, `fuel_exhausted`, …) would just fail again.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::WorkerPanicked)
    }
}

fn id_json(id: Option<i64>) -> Json {
    match id {
        Some(n) => Json::Int(n),
        None => Json::Null,
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: Option<i64>, result: &str, steps: u64, degraded: bool) -> String {
    ok_response_at(id, result, steps, degraded, None)
}

/// Renders a success response line carrying the epoch the request ran
/// under (`None` for inline ops, which have no execution epoch).
pub fn ok_response_at(
    id: Option<i64>,
    result: &str,
    steps: u64,
    degraded: bool,
    epoch: Option<u64>,
) -> String {
    let mut fields = vec![
        ("id".to_owned(), id_json(id)),
        ("status".to_owned(), Json::Str("ok".to_owned())),
        ("result".to_owned(), Json::Str(result.to_owned())),
        (
            "steps".to_owned(),
            Json::Int(steps.min(i64::MAX as u64) as i64),
        ),
        ("degraded".to_owned(), Json::Bool(degraded)),
    ];
    if let Some(e) = epoch {
        fields.push(("epoch".to_owned(), Json::Int(e.min(i64::MAX as u64) as i64)));
    }
    Json::Obj(fields).to_string()
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: Option<i64>, kind: ErrorKind, message: &str) -> String {
    error_response_at(id, kind, message, None)
}

/// Renders an error response line carrying the epoch the request ran
/// under (`None` for failures that precede execution).
pub fn error_response_at(
    id: Option<i64>,
    kind: ErrorKind,
    message: &str,
    epoch: Option<u64>,
) -> String {
    let mut fields = vec![
        ("id".to_owned(), id_json(id)),
        ("status".to_owned(), Json::Str("error".to_owned())),
        ("kind".to_owned(), Json::Str(kind.wire().to_owned())),
        ("message".to_owned(), Json::Str(message.to_owned())),
    ];
    if let Some(e) = epoch {
        fields.push(("epoch".to_owned(), Json::Int(e.min(i64::MAX as u64) as i64)));
    }
    Json::Obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_eval_with_knobs() {
        let r = parse_request(
            "{\"op\":\"eval\",\"id\":9,\"call\":\"f\",\"args\":[[1,2]],\"fuel\":100,\
             \"fault\":{\"seed\":3,\"panic_at_alloc\":5,\"alloc_retreat\":[1,4]}}",
        )
        .unwrap();
        let Request::Eval(e) = r else {
            panic!("not eval")
        };
        assert_eq!(e.id, Some(9));
        assert_eq!(e.call.as_deref(), Some("f"));
        assert_eq!(e.fuel, Some(100));
        assert!(e.fault.is_active());
    }

    #[test]
    fn malformed_frames_keep_the_id_when_parseable() {
        let (id, _) = parse_request("{\"op\":\"eval\",\"id\":4,\"fuel\":-1}").unwrap_err();
        assert_eq!(id, Some(4));
        let (id, _) = parse_request("{nope").unwrap_err();
        assert_eq!(id, None);
        let (id, _) = parse_request("{\"id\":2}").unwrap_err();
        assert_eq!(id, Some(2), "missing op still correlates");
    }

    #[test]
    fn out_of_range_fault_rates_are_errors_not_panics() {
        // 4294967296 truncates to 0 as u32; it must be rejected before
        // the cast, not panic inside FaultRate::new.
        for frame in [
            "{\"op\":\"eval\",\"id\":1,\"fault\":{\"alloc_retreat\":[1,4294967296]}}",
            "{\"op\":\"eval\",\"id\":1,\"fault\":{\"forced_gc\":[4294967296,2]}}",
            "{\"op\":\"eval\",\"id\":1,\"fault\":{\"region_deny\":[1,0]}}",
            "{\"op\":\"eval\",\"id\":1,\"fault\":{\"region_deny\":[-1,2]}}",
        ] {
            let (id, msg) = parse_request(frame).unwrap_err();
            assert_eq!(id, Some(1), "{frame}");
            assert!(msg.contains("denominator"), "{msg}");
        }
        // The full u32 range is accepted.
        assert!(parse_request(
            "{\"op\":\"eval\",\"fault\":{\"forced_gc\":[4294967295,4294967295]}}"
        )
        .is_ok());
    }

    #[test]
    fn shutdown_modes() {
        assert!(matches!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown { now: false, .. }
        ));
        assert!(matches!(
            parse_request("{\"op\":\"shutdown\",\"mode\":\"now\"}").unwrap(),
            Request::Shutdown { now: true, .. }
        ));
        assert!(parse_request("{\"op\":\"shutdown\",\"mode\":\"later\"}").is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = ok_response(Some(1), "[1, 2]", 42, false);
        assert!(crate::json::parse(&ok).is_ok(), "{ok}");
        let err = error_response(None, ErrorKind::BadRequest, "broken \"frame\"\n");
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("bad_request"));
    }

    #[test]
    fn epoch_field_appears_only_on_worker_responses() {
        let inline = ok_response(Some(1), "pong", 0, false);
        assert!(crate::json::parse(&inline).unwrap().get("epoch").is_none());
        let worker = ok_response_at(Some(1), "[]", 3, false, Some(7));
        let v = crate::json::parse(&worker).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_int), Some(7));
        let err = error_response_at(Some(2), ErrorKind::WorkerPanicked, "boom", Some(9));
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("epoch").and_then(Json::as_int), Some(9));
    }

    #[test]
    fn parses_reload_and_healthz() {
        assert!(matches!(
            parse_request("{\"op\":\"healthz\",\"id\":1}").unwrap(),
            Request::Healthz { id: Some(1) }
        ));
        let Request::Reload { id, src } = parse_request("{\"op\":\"reload\",\"id\":2}").unwrap()
        else {
            panic!("not reload")
        };
        assert_eq!((id, src), (Some(2), None));
        let Request::Reload { src, .. } =
            parse_request("{\"op\":\"reload\",\"src\":\"letrec f x = x in f 1\"}").unwrap()
        else {
            panic!("not reload")
        };
        assert_eq!(src.as_deref(), Some("letrec f x = x in f 1"));
        assert!(parse_request("{\"op\":\"reload\",\"src\":5}").is_err());
    }

    #[test]
    fn wire_names_roundtrip_and_exit_codes_are_distinct() {
        let kinds = [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::ShuttingDown,
            ErrorKind::WorkerPanicked,
            ErrorKind::FuelExhausted,
            ErrorKind::StackOverflow,
            ErrorKind::Cancelled,
            ErrorKind::CompileError,
            ErrorKind::Runtime,
        ];
        let mut codes = std::collections::BTreeSet::new();
        for k in kinds {
            assert_eq!(ErrorKind::from_wire(k.wire()), Some(k));
            let code = k.exit_code();
            assert!(code > 1, "0 and 1 are reserved");
            assert!(codes.insert(code), "duplicate exit code {code}");
        }
        assert_eq!(ErrorKind::from_wire("nope"), None);
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::WorkerPanicked.is_retryable());
        assert!(!ErrorKind::Runtime.is_retryable());
        assert!(!ErrorKind::ShuttingDown.is_retryable());
    }
}
