//! A small blocking NDJSON client for the serve protocol, used by
//! `nmlc call`, the chaos harness, and the throughput bench.
//!
//! Beyond raw request/response, the client is *self-healing*:
//! [`Client::call_retry`] retries typed server errors that are safe to
//! retry (`overloaded`, `worker_panicked` — requests that were shed or
//! died before completing; never `runtime_error`, which is the guest's
//! deterministic answer), under a per-call deadline and a
//! per-connection retry budget, with decorrelated-jitter backoff. A
//! [`CircuitBreaker`] trips after consecutive failures so a struggling
//! server is not hammered; after a cooldown it *half-opens* and sends a
//! single cheap `healthz` probe — the probe's answer decides whether
//! the circuit closes again.

use crate::json::Json;
use crate::proto::ErrorKind;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Retry/backoff policy for [`Client::call_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per call (beyond the first attempt).
    pub max_retries: u32,
    /// Total retries this connection may spend across all calls — a
    /// budget, so a failing server can't multiply load indefinitely.
    pub retry_budget: u32,
    /// First backoff sleep; also the decorrelated-jitter floor.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Overall per-call deadline (attempts + sleeps); `None` = none.
    pub deadline: Option<Duration>,
    /// Consecutive retryable failures that open the circuit.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects calls before half-opening.
    pub breaker_cooldown: Duration,
    /// Jitter RNG seed (fixed seed = reproducible schedules in tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            retry_budget: 16,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            deadline: None,
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(250),
            seed: 0x6e6d_6c63,
        }
    }
}

/// The circuit's observable state at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected locally (cooldown running).
    Open,
    /// Cooldown elapsed: the next call sends one `healthz` probe first.
    HalfOpen,
}

/// A consecutive-failure circuit breaker (time passed in explicitly,
/// so state transitions are unit-testable without sleeping).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and half-opens `cooldown` later. `threshold` is clamped
    /// to at least 1.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive: 0,
            opened_at: None,
        }
    }

    /// The state as of `now`.
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if now.duration_since(at) >= self.cooldown => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Records a successful call (or probe): closes the circuit.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.opened_at = None;
    }

    /// Records a failed call (or probe) at `now`; opens the circuit at
    /// the threshold and restarts the cooldown if already open.
    pub fn record_failure(&mut self, now: Instant) {
        self.consecutive = self.consecutive.saturating_add(1);
        if self.consecutive >= self.threshold || self.opened_at.is_some() {
            self.opened_at = Some(now);
        }
    }
}

/// A blocking connection to a running server.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    rng: u64,
    retries_used: u64,
    budget_left: u32,
}

impl Client {
    /// Connects to the server socket at `path`.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        let policy = RetryPolicy::default();
        let breaker = CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown);
        let rng = policy.seed;
        let budget_left = policy.retry_budget;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            policy,
            breaker,
            rng,
            retries_used: 0,
            budget_left,
        })
    }

    /// Connects, retrying until the socket exists and accepts (for
    /// racing a just-spawned server).
    ///
    /// # Errors
    ///
    /// The last connect failure once `within` has elapsed.
    pub fn connect_retry(path: &Path, within: Duration) -> std::io::Result<Client> {
        let deadline = Instant::now() + within;
        loop {
            match Client::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Replaces the retry policy (resets the breaker, jitter RNG, and
    /// remaining retry budget).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.breaker = CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown);
        self.rng = policy.seed;
        self.budget_left = policy.retry_budget;
        self.policy = policy;
    }

    /// Retries spent by [`Client::call_retry`] over this connection.
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// Sends one already-rendered request line.
    ///
    /// # Errors
    ///
    /// Any socket-level write failure.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (without the newline). `Ok(None)`
    /// means the server closed the connection.
    ///
    /// # Errors
    ///
    /// Any socket-level read failure.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends a request line and parses the next response line.
    ///
    /// Responses arrive in completion order, not send order — callers
    /// that pipeline multiple evals on one connection must correlate by
    /// `id` instead of using this helper.
    ///
    /// # Errors
    ///
    /// An io error on socket failure or early close, or the parse
    /// message if the response is not valid JSON.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.send_line(line)?;
        let resp = self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            )
        })?;
        crate::json::parse(&resp)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a request line, retrying retry-safe typed errors under the
    /// connection's [`RetryPolicy`] (see the module docs). Returns the
    /// final response — which may still be a typed error once retries,
    /// budget, or the deadline run out.
    ///
    /// # Errors
    ///
    /// Socket-level failures (not retried: the connection is gone), or
    /// a local circuit-open rejection (`ErrorKind::ConnectionRefused`
    /// io error whose message mentions the circuit breaker — the server
    /// was never contacted). The rejection applies only to calls that
    /// *start* while the circuit is open; a call whose own retries
    /// opened the circuit waits out the cooldown and continues through
    /// the half-open probe instead of aborting mid-flight.
    pub fn call_retry(&mut self, line: &str) -> std::io::Result<Json> {
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let mut prev_backoff = self.policy.base_backoff;
        loop {
            match self.breaker.state(Instant::now()) {
                BreakerState::Closed => {}
                BreakerState::Open => {
                    if attempt == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionRefused,
                            "circuit breaker open; not contacting the server",
                        ));
                    }
                    // This call's own retries tripped the circuit: wait
                    // for the cooldown, then half-open and probe.
                    std::thread::sleep(self.policy.breaker_cooldown);
                    continue;
                }
                BreakerState::HalfOpen => {
                    // One cheap probe decides: answered by the reader
                    // thread even when the workers are saturated.
                    match self.request("{\"op\":\"healthz\"}") {
                        Ok(probe) if probe.get("status").and_then(Json::as_str) == Some("ok") => {
                            self.breaker.record_success();
                        }
                        _ => {
                            self.breaker.record_failure(Instant::now());
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::ConnectionRefused,
                                "circuit breaker half-open probe failed",
                            ));
                        }
                    }
                }
            }
            let resp = match self.request(line) {
                Ok(r) => r,
                Err(e) => {
                    self.breaker.record_failure(Instant::now());
                    return Err(e);
                }
            };
            let kind = resp
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_wire);
            let retryable = resp.get("status").and_then(Json::as_str) == Some("error")
                && kind.is_some_and(ErrorKind::is_retryable);
            if !retryable {
                if resp.get("status").and_then(Json::as_str) == Some("ok") {
                    self.breaker.record_success();
                }
                return Ok(resp);
            }
            self.breaker.record_failure(Instant::now());
            if attempt >= self.policy.max_retries || self.budget_left == 0 {
                return Ok(resp);
            }
            let mut sleep = self.next_backoff(&mut prev_backoff);
            if self.breaker.state(Instant::now() + sleep) == BreakerState::Open {
                // The failure just opened the circuit: stretch the sleep
                // to the cooldown so the next attempt half-opens instead
                // of rejecting, and so the deadline check sees the true
                // wait.
                sleep = sleep.max(self.policy.breaker_cooldown);
            }
            if let Some(deadline) = self.policy.deadline {
                let elapsed = started.elapsed();
                if elapsed + sleep >= deadline {
                    return Ok(resp); // out of time: surface the last answer
                }
            }
            attempt += 1;
            self.budget_left -= 1;
            self.retries_used += 1;
            std::thread::sleep(sleep);
        }
    }

    /// Decorrelated jitter: `sleep = min(cap, uniform(base, prev * 3))`.
    fn next_backoff(&mut self, prev: &mut Duration) -> Duration {
        let base = self.policy.base_backoff.max(Duration::from_millis(1));
        let cap = self.policy.max_backoff.max(base);
        let lo = base.as_millis() as u64;
        let hi = (prev.saturating_mul(3)).as_millis().max(lo as u128) as u64;
        let span = hi.saturating_sub(lo).saturating_add(1);
        let pick = lo + self.next_u64() % span;
        let sleep = Duration::from_millis(pick).min(cap);
        *prev = sleep;
        sleep
    }

    /// splitmix64, locally seeded — no external crates, reproducible.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(3, Duration::from_millis(100));
        let now = t0();
        assert_eq!(b.state(now), BreakerState::Closed);
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(now), BreakerState::Closed, "below threshold");
        b.record_failure(now);
        assert_eq!(b.state(now), BreakerState::Open);
        assert_eq!(b.state(now + Duration::from_millis(99)), BreakerState::Open);
        assert_eq!(
            b.state(now + Duration::from_millis(100)),
            BreakerState::HalfOpen
        );
        b.record_success();
        assert_eq!(
            b.state(now + Duration::from_millis(100)),
            BreakerState::Closed
        );
    }

    #[test]
    fn breaker_failure_while_open_restarts_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(100));
        let now = t0();
        b.record_failure(now);
        assert_eq!(
            b.state(now + Duration::from_millis(100)),
            BreakerState::HalfOpen
        );
        // A failed probe re-opens with a fresh cooldown.
        b.record_failure(now + Duration::from_millis(100));
        assert_eq!(
            b.state(now + Duration::from_millis(150)),
            BreakerState::Open
        );
        assert_eq!(
            b.state(now + Duration::from_millis(200)),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(2, Duration::from_millis(50));
        let now = t0();
        b.record_failure(now);
        b.record_success();
        b.record_failure(now);
        assert_eq!(b.state(now), BreakerState::Closed, "streak was broken");
        b.record_failure(now);
        assert_eq!(b.state(now), BreakerState::Open);
    }
}
