//! A small blocking NDJSON client for the serve protocol, used by
//! `nmlc call`, the chaos harness, and the throughput bench.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A blocking connection to a running server.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the server socket at `path`.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects, retrying until the socket exists and accepts (for
    /// racing a just-spawned server).
    ///
    /// # Errors
    ///
    /// The last connect failure once `within` has elapsed.
    pub fn connect_retry(path: &Path, within: Duration) -> std::io::Result<Client> {
        let deadline = Instant::now() + within;
        loop {
            match Client::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one already-rendered request line.
    ///
    /// # Errors
    ///
    /// Any socket-level write failure.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (without the newline). `Ok(None)`
    /// means the server closed the connection.
    ///
    /// # Errors
    ///
    /// Any socket-level read failure.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends a request line and parses the next response line.
    ///
    /// Responses arrive in completion order, not send order — callers
    /// that pipeline multiple evals on one connection must correlate by
    /// `id` instead of using this helper.
    ///
    /// # Errors
    ///
    /// An io error on socket failure or early close, or the parse
    /// message if the response is not valid JSON.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.send_line(line)?;
        let resp = self.recv_line()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            )
        })?;
        crate::json::parse(&resp)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
