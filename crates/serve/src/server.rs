//! The server: compile once, serve many.
//!
//! One acceptor thread (inline in [`serve`]), one reader thread per
//! connection, and a fixed worker pool over a shared immutable
//! [`IrProgram`] — each worker owns its own `Vm` (and therefore its own
//! heap), so requests never share mutable runtime state.
//!
//! Robustness layers:
//!
//! - **admission** — a bounded MPMC queue; a full queue sheds the
//!   request with a typed `overloaded` response (never a silent drop),
//!   and a closed queue (shutdown) answers `shutting_down`.
//! - **worker** — every request runs under `catch_unwind`; a panic
//!   poisons only that worker's heap, which is dropped and rebuilt
//!   (crash-only recovery) while the request gets a structured
//!   `worker_panicked` response and the server keeps serving.
//! - **runtime** — per-request fuel (or a wall-clock deadline mapped to
//!   fuel), the engine's depth limit, and a shared cancellation flag
//!   for immediate shutdown; all surface as typed errors.
//! - **checked mode** — a soundness violation quarantines the offending
//!   site in a server-wide set, recompiles with the site disabled, and
//!   retries *within the request*; other workers are never interrupted.

use crate::json::Json;
use crate::proto::{self, ErrorKind, EvalRequest, Request};
use nml_escape::{analyze_source_scheduled, Budget, EngineConfig, PolyMode, ScheduleOptions};
use nml_opt::{
    apply_quarantine, lower_program, sabotage_stack, AllocMode, IrProgram, OptOptions,
    QuarantineSet, SabotagePlan,
};
use nml_runtime::{FaultPlan, Heap, HeapConfig, InterpConfig, RuntimeError, Value, Vm};
use nml_syntax::Symbol;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind as IoKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default deadline→fuel calibration: a conservative estimate of VM
/// steps per wall-clock millisecond (release builds run faster; the
/// mapping errs toward letting work finish).
pub const DEFAULT_STEPS_PER_MS: u64 = 200_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each owns one heap over the shared program).
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests are shed.
    pub queue_cap: usize,
    /// Fuel for requests that specify none (`None` = unmetered).
    pub default_fuel: Option<u64>,
    /// Deadline for requests that specify none, mapped to fuel.
    pub default_timeout_ms: Option<u64>,
    /// Call-depth limit (`None` = the engine default).
    pub max_depth: Option<usize>,
    /// Run the full optimization pass manager on the compiled program.
    pub optimize: bool,
    /// Execute under the soundness sentinel with per-request
    /// quarantine→recompile→retry recovery.
    pub checked: bool,
    /// Violation retries per request before degrading to the
    /// unoptimized program.
    pub max_retries: u32,
    /// Deadline→fuel calibration.
    pub steps_per_ms: u64,
    /// Analysis resource budget (degrades, never fails).
    pub budget: Budget,
    /// Analysis worker threads per SCC wave.
    pub jobs: usize,
    /// Persistent escape-summary cache path.
    pub summary_cache: Option<PathBuf>,
    /// Generational collection in each worker's heap (see
    /// `HeapConfig::gen_gc`).
    pub gen_gc: bool,
    /// Worker nursery size in KiB (see `HeapConfig::nursery_kb`).
    pub nursery_kb: usize,
    /// Deliberate unsound stack claims (sentinel/chaos testing): forced
    /// on every compile, then neutralized site-by-site as checked-mode
    /// violations quarantine them — exactly how a genuine analysis bug
    /// would be worn down at runtime.
    pub sabotage: SabotagePlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            default_fuel: None,
            default_timeout_ms: None,
            max_depth: None,
            optimize: true,
            checked: false,
            max_retries: 4,
            steps_per_ms: DEFAULT_STEPS_PER_MS,
            budget: Budget::unlimited(),
            jobs: 1,
            summary_cache: None,
            gen_gc: HeapConfig::default().gen_gc,
            nursery_kb: HeapConfig::default().nursery_kb,
            sabotage: SabotagePlan::default(),
        }
    }
}

/// A server failure (the *server's* — guest failures are responses).
#[derive(Debug)]
pub enum ServeError {
    /// The program did not compile; the server never started.
    Compile(String),
    /// Socket setup failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compile(m) => write!(f, "compile error: {m}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Final server counters, returned by [`serve`] after a clean drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests answered `ok`.
    pub served_ok: u64,
    /// Requests answered with a typed guest failure.
    pub guest_errors: u64,
    /// Worker panics (each also replaced a worker).
    pub panics: u64,
    /// Requests that succeeded only after checked-mode degradation.
    pub degraded: u64,
    /// Requests shed at admission (`overloaded` + `shutting_down`).
    pub shed: u64,
    /// Malformed frames answered `bad_request`.
    pub bad_frames: u64,
    /// Sites quarantined by checked-mode violations.
    pub quarantined_sites: u64,
}

#[derive(Default)]
struct Stats {
    served_ok: AtomicU64,
    guest_errors: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    bad_frames: AtomicU64,
    quarantined_sites: AtomicU64,
}

impl Stats {
    fn report(&self) -> ServerReport {
        ServerReport {
            served_ok: self.served_ok.load(Ordering::Relaxed),
            guest_errors: self.guest_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            quarantined_sites: self.quarantined_sites.load(Ordering::Relaxed),
        }
    }

    fn render(&self) -> String {
        let r = self.report();
        format!(
            "ok={} guest_errors={} panics={} degraded={} shed={} bad_frames={} quarantined={}",
            r.served_ok,
            r.guest_errors,
            r.panics,
            r.degraded,
            r.shed,
            r.bad_frames,
            r.quarantined_sites
        )
    }
}

/// Locks a mutex, recovering from poisoning: the protected values
/// (queue, stats, client streams) stay structurally valid across a
/// worker panic, and crash-only recovery must keep serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Bounded MPMC admission queue
// ---------------------------------------------------------------------

/// Why admission failed.
enum AdmitError {
    /// The queue is at capacity — shed with `overloaded`.
    Full,
    /// The server is draining — shed with `shutting_down`.
    Closed,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue (std's mpsc channel is
/// single-consumer, and the pool needs any-worker pickup).
struct BoundedQueue<T> {
    cap: usize,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admission: never blocks, never silently drops.
    fn try_push(&self, item: T) -> Result<(), (AdmitError, T)> {
        let mut g = lock(&self.inner);
        if g.closed {
            return Err((AdmitError::Closed, item));
        }
        if g.items.len() >= self.cap {
            return Err((AdmitError::Full, item));
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained — the
    /// worker-pool exit condition that guarantees every admitted
    /// request is answered.
    fn pop(&self) -> Option<T> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .ready
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------

type SharedWriter = Arc<Mutex<UnixStream>>;

struct Job {
    req: EvalRequest,
    out: SharedWriter,
}

struct Shared {
    queue: BoundedQueue<Job>,
    /// Stop accepting connections (set by a shutdown request).
    stopping: AtomicBool,
    /// Hard-cancel flag shared with every worker's engine.
    cancel: Arc<AtomicBool>,
    /// All admitted work answered; readers may exit.
    done: AtomicBool,
    stats: Stats,
    /// Server-wide checked-mode quarantine (sites disproved at runtime).
    quarantine: Mutex<QuarantineSet>,
}

fn respond(out: &SharedWriter, line: &str) {
    // A vanished client is not a server failure; the write result is
    // deliberately ignored.
    let mut g = lock(out);
    let _ = g.write_all(line.as_bytes());
    let _ = g.write_all(b"\n");
    let _ = g.flush();
}

// ---------------------------------------------------------------------
// Compilation (self-contained glue over the leaf crates; the root
// crate's pipeline depends on this crate's consumer, not vice versa)
// ---------------------------------------------------------------------

/// Compiles `src` through the governed, SCC-scheduled analysis and the
/// optimization pass manager, minus any quarantined sites.
///
/// # Errors
///
/// A rendered front-end diagnostic (syntax/type errors).
pub fn compile_program(
    src: &str,
    cfg: &ServeConfig,
    quarantine: &QuarantineSet,
    optimize: bool,
) -> Result<IrProgram, String> {
    let sched = ScheduleOptions {
        jobs: cfg.jobs,
        summary_cache: cfg.summary_cache.clone(),
    };
    let analysis = analyze_source_scheduled(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        cfg.budget,
        &sched,
    )
    .map_err(|e| e.to_string())?;
    let mut ir = lower_program(&analysis.program, &analysis.info);
    if optimize {
        nml_opt::optimize(&mut ir, &analysis, &OptOptions::default());
    }
    sabotage_stack(&mut ir, &cfg.sabotage);
    if !quarantine.is_empty() {
        apply_quarantine(&mut ir, quarantine);
    }
    Ok(ir)
}

// ---------------------------------------------------------------------
// Request execution (worker side)
// ---------------------------------------------------------------------

/// Turns a JSON argument into a guest value (integers, booleans, and
/// arrays as lists, built innermost-first on the worker's heap).
///
/// Recursion is bounded by the same depth cap as the protocol parser
/// (`json::MAX_DEPTH`); the parser already enforces it on every frame,
/// this re-check keeps the worker's stack safe against any future
/// caller that builds a `Json` some other way.
fn build_arg<'p>(heap: &mut Heap<'p>, j: &Json, depth: usize) -> Result<Value<'p>, String> {
    if depth >= crate::json::MAX_DEPTH {
        return Err(format!(
            "argument nesting deeper than {}",
            crate::json::MAX_DEPTH
        ));
    }
    match j {
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Arr(items) => {
            let mut vs = Vec::with_capacity(items.len());
            for it in items {
                vs.push(build_arg(heap, it, depth + 1)?);
            }
            let mut acc = Value::Nil;
            for v in vs.into_iter().rev() {
                let cell = heap.alloc(v, acc, AllocMode::Heap);
                acc = Value::Pair(cell);
            }
            Ok(acc)
        }
        other => Err(format!(
            "unsupported argument {other} (int, bool, or array)"
        )),
    }
}

/// Renders a result value (same surface syntax as `nmlc run`).
///
/// Iterative with an explicit worklist: rendering depth tracks the
/// value's cons-in-car/tuple nesting, which is data-shaped and not
/// under the server's control, and a native stack overflow aborts the
/// process instead of unwinding — straight past `catch_unwind`,
/// defeating crash isolation.
fn render_value(heap: &Heap<'_>, v: &Value<'_>) -> Result<String, RuntimeError> {
    enum Task<'p> {
        /// Render one value.
        Val(Value<'p>),
        /// Continue a list whose remaining tail is this value.
        Tail(Value<'p>),
        /// Emit a literal (closers and separators).
        Lit(&'static str),
    }
    let mut out = String::new();
    let mut work = vec![Task::Val(v.clone())];
    while let Some(task) = work.pop() {
        match task {
            Task::Lit(s) => out.push_str(s),
            Task::Val(v) => match v {
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Bool(b) => out.push_str(if b { "true" } else { "false" }),
                Value::Nil => out.push_str("[]"),
                Value::Tuple(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push('(');
                    work.push(Task::Lit(")"));
                    work.push(Task::Val(t));
                    work.push(Task::Lit(", "));
                    work.push(Task::Val(h));
                }
                Value::Pair(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push('[');
                    work.push(Task::Tail(t));
                    work.push(Task::Val(h));
                }
                other => {
                    out.push('<');
                    out.push_str(other.kind());
                    out.push('>');
                }
            },
            Task::Tail(v) => match v {
                Value::Pair(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push_str(", ");
                    work.push(Task::Tail(t));
                    work.push(Task::Val(h));
                }
                // Nil or an improper tail ends the list, as before.
                _ => out.push(']'),
            },
        }
    }
    Ok(out)
}

enum ReqError {
    /// The request itself was unusable (bad argument shape).
    Bad(String),
    /// The guest program failed.
    Rt(RuntimeError),
}

impl From<RuntimeError> for ReqError {
    fn from(e: RuntimeError) -> Self {
        ReqError::Rt(e)
    }
}

/// The per-request fuel: explicit fuel, else the deadline mapping, else
/// the server defaults.
fn request_fuel(req: &EvalRequest, cfg: &ServeConfig) -> Option<u64> {
    req.fuel
        .or_else(|| req.timeout_ms.map(|ms| ms.saturating_mul(cfg.steps_per_ms)))
        .or(cfg.default_fuel)
        .or_else(|| {
            cfg.default_timeout_ms
                .map(|ms| ms.saturating_mul(cfg.steps_per_ms))
        })
}

/// Runs one request on `vm`, restoring the machine's inert fault plan
/// and unlimited fuel afterwards (also on the error paths — the next
/// request must not inherit this one's knobs).
fn execute<'p>(
    vm: &mut Vm<'p>,
    req: &EvalRequest,
    fuel: Option<u64>,
) -> Result<(String, u64), ReqError> {
    vm.set_fault_plan(req.fault.clone());
    vm.set_fuel(fuel);
    let before = vm.heap.stats.steps;
    let r = (|| -> Result<String, ReqError> {
        let v = match &req.call {
            Some(name) => {
                // Probe without interning: the interner is append-only
                // and process-wide, so interning every bogus
                // client-supplied name would leak for the life of the
                // server. Every name in the compiled program is already
                // interned, so a miss is always unbound.
                let sym = Symbol::lookup(name)
                    .ok_or_else(|| ReqError::Rt(RuntimeError::Unbound { name: name.clone() }))?;
                let mut args = Vec::with_capacity(req.args.len());
                for a in &req.args {
                    args.push(build_arg(&mut vm.heap, a, 0).map_err(ReqError::Bad)?);
                }
                vm.call(sym, args)?
            }
            None => vm.run()?,
        };
        Ok(render_value(&vm.heap, &v)?)
    })();
    let steps = vm.heap.stats.steps.saturating_sub(before);
    vm.set_fault_plan(FaultPlan::default());
    vm.set_fuel(None);
    r.map(|result| (result, steps))
}

fn worker_interp_config(cfg: &ServeConfig, sh: &Shared, checked: bool) -> InterpConfig {
    let mut c = InterpConfig {
        heap: HeapConfig {
            checked,
            gen_gc: cfg.gen_gc,
            nursery_kb: cfg.nursery_kb,
            ..HeapConfig::default()
        },
        cancel: Some(sh.cancel.clone()),
        ..InterpConfig::default()
    };
    if let Some(d) = cfg.max_depth {
        c.max_depth = d;
    }
    c
}

/// Checked-mode recovery, entirely within the failing request: record
/// the disproved site in the server-wide quarantine, recompile with
/// every quarantined site's optimization disabled, and retry — up to
/// `max_retries` times, then once more fully unoptimized (which makes
/// no claims and cannot violate). Other workers keep serving the
/// original program; requests that hit the same site degrade the same
/// way, in isolation.
fn recover_violation(
    src: &str,
    cfg: &ServeConfig,
    sh: &Shared,
    req: &EvalRequest,
    fuel: Option<u64>,
    first: Box<nml_runtime::SoundnessViolation>,
) -> String {
    let mut violation = Some(first);
    let mut attempt = 0u32;
    loop {
        if let Some(v) = violation.take() {
            if let Some(site) = v.site {
                if lock(&sh.quarantine).insert(site) {
                    sh.stats.quarantined_sites.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        attempt += 1;
        let exhausted = attempt > cfg.max_retries;
        let q = {
            let g = lock(&sh.quarantine);
            let mut copy = QuarantineSet::new();
            for s in g.iter() {
                copy.insert(s);
            }
            copy
        };
        // While retrying, stay optimized-but-checked minus the
        // quarantined sites; once exhausted, fall back to the
        // unoptimized, unchecked program.
        let (optimize, checked) = if exhausted {
            (false, false)
        } else {
            (cfg.optimize, true)
        };
        // The exhausted fallback must make no claims at all — including
        // sabotaged ones — so it compiles from a claim-free config.
        let clean;
        let compile_cfg = if exhausted && !cfg.sabotage.is_empty() {
            clean = ServeConfig {
                sabotage: SabotagePlan::default(),
                ..cfg.clone()
            };
            &clean
        } else {
            cfg
        };
        let ir = match compile_program(src, compile_cfg, &q, optimize) {
            Ok(ir) => ir,
            Err(m) => {
                return proto::error_response(
                    req.id,
                    ErrorKind::Runtime,
                    &format!("recovery recompile failed: {m}"),
                )
            }
        };
        let config = worker_interp_config(cfg, sh, checked);
        let outcome = Vm::with_config(&ir, config)
            .map_err(ReqError::Rt)
            .and_then(|mut vm| execute(&mut vm, req, fuel));
        match outcome {
            Ok((result, steps)) => {
                sh.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                sh.stats.degraded.fetch_add(1, Ordering::Relaxed);
                return proto::ok_response(req.id, &result, steps, true);
            }
            Err(ReqError::Rt(RuntimeError::Soundness(v))) if !exhausted => {
                violation = Some(v);
            }
            Err(e) => return guest_error_response(req.id, sh, e),
        }
    }
}

fn guest_error_response(id: Option<i64>, sh: &Shared, e: ReqError) -> String {
    match e {
        ReqError::Bad(m) => {
            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            proto::error_response(id, ErrorKind::BadRequest, &m)
        }
        ReqError::Rt(e) => {
            sh.stats.guest_errors.fetch_add(1, Ordering::Relaxed);
            proto::error_response(id, ErrorKind::of_runtime(&e), &e.to_string())
        }
    }
}

/// One worker: owns a `Vm` (heap included) over the shared program,
/// serves jobs until the queue closes and drains. A panic during a
/// request is caught, answered, and the machine rebuilt from scratch —
/// crash-only recovery, nothing from the poisoned heap survives.
fn worker_loop(program: &IrProgram, src: &str, cfg: &ServeConfig, sh: &Shared) {
    let build = || Vm::with_config(program, worker_interp_config(cfg, sh, cfg.checked));
    let mut vm = build().ok();
    while let Some(job) = sh.queue.pop() {
        if vm.is_none() {
            vm = build().ok();
        }
        let Some(m) = vm.as_mut() else {
            sh.stats.guest_errors.fetch_add(1, Ordering::Relaxed);
            respond(
                &job.out,
                &proto::error_response(
                    job.req.id,
                    ErrorKind::Runtime,
                    "worker failed to initialize the program",
                ),
            );
            continue;
        };
        let req = &job.req;
        let fuel = request_fuel(req, cfg);
        let run = catch_unwind(AssertUnwindSafe(|| match execute(m, req, fuel) {
            Ok((result, steps)) => {
                sh.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                proto::ok_response(req.id, &result, steps, false)
            }
            Err(ReqError::Rt(RuntimeError::Soundness(v))) if cfg.checked => {
                recover_violation(src, cfg, sh, req, fuel, v)
            }
            Err(e) => guest_error_response(req.id, sh, e),
        }));
        match run {
            Ok(line) => respond(&job.out, &line),
            Err(_) => {
                // Crash-only: the poisoned machine (heap and all) is
                // dropped; the next job gets a fresh one.
                vm = None;
                sh.stats.panics.fetch_add(1, Ordering::Relaxed);
                respond(
                    &job.out,
                    &proto::error_response(
                        req.id,
                        ErrorKind::WorkerPanicked,
                        "worker panicked on this request and was replaced",
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection readers + acceptor
// ---------------------------------------------------------------------

fn handle_line(line: &str, out: &SharedWriter, sh: &Shared) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    match proto::parse_request(line) {
        Err((id, msg)) => {
            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            respond(out, &proto::error_response(id, ErrorKind::BadRequest, &msg));
        }
        Ok(Request::Ping { id }) => {
            respond(out, &proto::ok_response(id, "pong", 0, false));
        }
        Ok(Request::Stats { id }) => {
            respond(out, &proto::ok_response(id, &sh.stats.render(), 0, false));
        }
        Ok(Request::Shutdown { id, now }) => {
            // Respond first (the reply must not race the drain), then
            // stop admissions; "now" also cancels in-flight work.
            respond(
                out,
                &proto::ok_response(id, if now { "stopping" } else { "draining" }, 0, false),
            );
            if now {
                sh.cancel.store(true, Ordering::SeqCst);
            }
            sh.stopping.store(true, Ordering::SeqCst);
            sh.queue.close();
        }
        Ok(Request::Eval(req)) => {
            let job = Job {
                req,
                out: out.clone(),
            };
            match sh.queue.try_push(job) {
                Ok(()) => {}
                Err((AdmitError::Full, job)) => {
                    sh.stats.shed.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &job.out,
                        &proto::error_response(
                            job.req.id,
                            ErrorKind::Overloaded,
                            "request queue is full; retry later",
                        ),
                    );
                }
                Err((AdmitError::Closed, job)) => {
                    sh.stats.shed.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &job.out,
                        &proto::error_response(
                            job.req.id,
                            ErrorKind::ShuttingDown,
                            "server is shutting down",
                        ),
                    );
                }
            }
        }
    }
}

fn reader_loop(stream: UnixStream, sh: &Shared) {
    // The timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let out: SharedWriter = Arc::new(Mutex::new(writer));
    let mut reader = BufReader::new(stream);
    // Accumulate bytes, not a String: `read_line` discards its partial
    // tail when a read times out mid-frame and the tail is not valid
    // UTF-8 (a multi-byte character split across the timeout boundary
    // would silently corrupt the frame). `read_until` keeps every byte
    // consumed from the socket; UTF-8 is validated per complete line
    // and a bad line becomes a `bad_request` response.
    let mut buf = Vec::new();
    loop {
        if sh.done.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(n) => {
                // `read_until` returns Ok only at the delimiter or at
                // EOF (n == 0 and nothing new once drained).
                let eof = n == 0;
                if !buf.is_empty() && (eof || buf.ends_with(b"\n")) {
                    match std::str::from_utf8(&buf) {
                        Ok(line) => handle_line(line, &out, sh),
                        Err(_) => {
                            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                            respond(
                                &out,
                                &proto::error_response(
                                    None,
                                    ErrorKind::BadRequest,
                                    "frame is not valid UTF-8",
                                ),
                            );
                        }
                    }
                    buf.clear();
                }
                if eof {
                    return; // client closed
                }
            }
            // Timeout: `buf` keeps the partial frame; poll again.
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// The server entry
// ---------------------------------------------------------------------

/// Compiles `src` once and serves eval requests on a Unix socket at
/// `socket` until a `shutdown` request. Returns the final counters
/// after a clean drain (every admitted request answered, all threads
/// joined, socket file removed).
///
/// # Errors
///
/// [`ServeError::Compile`] if the program doesn't compile (the socket
/// is never created), [`ServeError::Io`] for socket setup failures.
pub fn serve(src: &str, socket: &Path, cfg: &ServeConfig) -> Result<ServerReport, ServeError> {
    let program = compile_program(src, cfg, &QuarantineSet::new(), cfg.optimize)
        .map_err(ServeError::Compile)?;
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket).map_err(ServeError::Io)?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let sh = Shared {
        queue: BoundedQueue::new(cfg.queue_cap),
        stopping: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        done: AtomicBool::new(false),
        stats: Stats::default(),
        quarantine: Mutex::new(QuarantineSet::new()),
    };
    let program = &program;
    let sh = &sh;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| s.spawn(move || worker_loop(program, src, cfg, sh)))
            .collect();
        while !sh.stopping.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    s.spawn(move || reader_loop(stream, sh));
                }
                Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Shutdown: no new admissions (idempotent if the handler
        // already closed the queue), drain the pool, then release the
        // readers.
        sh.queue.close();
        for w in workers {
            let _ = w.join();
        }
        sh.done.store(true, Ordering::SeqCst);
    });
    let _ = std::fs::remove_file(socket);
    Ok(sh.stats.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100k levels of cons-in-car nesting, built directly on a heap
    /// (the guest type system bounds nesting per program, but the
    /// renderer must not bank on that): recursive rendering would
    /// overflow the native stack and abort the process.
    #[test]
    fn render_value_handles_deep_nesting_iteratively() {
        let mut heap = Heap::new(HeapConfig::default());
        let mut acc = Value::Nil;
        for _ in 0..100_000 {
            let cell = heap.alloc(acc, Value::Nil, AllocMode::Heap);
            acc = Value::Pair(cell);
        }
        let s = render_value(&heap, &acc).expect("render");
        assert_eq!(s.len(), 2 * 100_000 + 2, "100k nested singleton lists");
        assert!(s.starts_with("[[[") && s.ends_with("]]]"));

        // Deep tuple-in-tuple nesting exercises the other recursive arm.
        let mut acc = Value::Int(1);
        for _ in 0..100_000 {
            let cell = heap.alloc(acc, Value::Int(0), AllocMode::Heap);
            acc = Value::Tuple(cell);
        }
        let s = render_value(&heap, &acc).expect("render tuples");
        assert!(
            s.starts_with("(((") && s.ends_with("0), 0)"),
            "{}",
            &s[s.len() - 16..]
        );
    }

    #[test]
    fn render_value_list_shapes() {
        let mut heap = Heap::new(HeapConfig::default());
        let inner = heap.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        let outer = heap.alloc(Value::Int(1), Value::Pair(inner), AllocMode::Heap);
        let s = render_value(&heap, &Value::Pair(outer)).expect("render");
        assert_eq!(s, "[1, 2]");
        let t = heap.alloc(Value::Int(1), Value::Bool(true), AllocMode::Heap);
        assert_eq!(render_value(&heap, &Value::Tuple(t)).unwrap(), "(1, true)");
        assert_eq!(render_value(&heap, &Value::Nil).unwrap(), "[]");
    }

    /// `build_arg` is depth-limited in its own right, independent of
    /// the protocol parser's limit.
    #[test]
    fn build_arg_rejects_excessive_nesting() {
        let mut deep = Json::Int(1);
        for _ in 0..(crate::json::MAX_DEPTH + 1) {
            deep = Json::Arr(vec![deep]);
        }
        let mut heap = Heap::new(HeapConfig::default());
        let err = build_arg(&mut heap, &deep, 0).unwrap_err();
        assert!(err.contains("nesting"), "{err}");

        // At the boundary it still works.
        let mut ok = Json::Int(1);
        for _ in 0..(crate::json::MAX_DEPTH - 1) {
            ok = Json::Arr(vec![ok]);
        }
        assert!(build_arg(&mut heap, &ok, 0).is_ok());
    }
}
