//! The server: compile once, serve many — and recompile under load.
//!
//! One acceptor thread (inline in [`serve`]), one reader thread per
//! connection, and a fixed worker pool over a shared immutable program —
//! each worker owns its own `Vm` (and therefore its own heap), so
//! requests never share mutable runtime state.
//!
//! Robustness layers:
//!
//! - **admission** — a bounded MPMC queue; a full queue sheds the
//!   request with a typed `overloaded` response (never a silent drop),
//!   and a closed queue (shutdown) answers `shutting_down`.
//! - **worker** — every request runs under `catch_unwind`; a panic
//!   poisons only that worker's heap, which is dropped and rebuilt
//!   (crash-only recovery) while the request gets a structured
//!   `worker_panicked` response and the server keeps serving.
//! - **runtime** — per-request fuel (or a wall-clock deadline mapped to
//!   fuel), the engine's depth limit, and a shared cancellation flag
//!   for immediate shutdown; all surface as typed errors.
//! - **checked mode** — a soundness violation quarantines the offending
//!   site in the epoch's quarantine set, recompiles with the site
//!   disabled, and retries *within the request*; other workers are
//!   never interrupted, and the decision is carried to future epochs
//!   whose defining code is unchanged (see [`crate::epoch`]).
//! - **hot reload** — `{"op":"reload"}` (or `--watch` on the source
//!   file) re-analyzes the program through `core::incremental` off the
//!   worker threads; a broken edit answers `compile_error` and keeps
//!   the old epoch live, a good one atomically swaps the current
//!   `Arc<Epoch>`. In-flight requests finish on their admission epoch;
//!   the old epoch is reclaimed when its last request drains.
//! - **flight recorder** — worker panics and soundness violations are
//!   captured as replayable crash bundles in a bounded on-disk ring
//!   (see [`crate::bundle`] and [`crate::replay`]); repeated crash
//!   signatures escalate to a server-wide quarantine of the site.

use crate::bundle::{BundleConfig, BundleRing, CrashBundle};
use crate::epoch::{CarryMap, Epoch};
use crate::json::Json;
use crate::proto::{self, ErrorKind, EvalRequest, Request};
use nml_escape::{
    analyze_source_scheduled, Analysis, Budget, EngineConfig, Incremental, PolyMode,
    ScheduleOptions,
};
use nml_opt::{
    apply_quarantine, lower_program, sabotage_stack, AllocMode, IrProgram, OptOptions,
    QuarantineSet, SabotagePlan, SiteId,
};
use nml_runtime::{FaultPlan, Heap, HeapConfig, InterpConfig, RuntimeError, Value, Vm};
use nml_syntax::Symbol;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind as IoKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Default deadline→fuel calibration: a conservative estimate of VM
/// steps per wall-clock millisecond (release builds run faster; the
/// mapping errs toward letting work finish).
pub const DEFAULT_STEPS_PER_MS: u64 = 200_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each owns one heap over the shared program).
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests are shed.
    pub queue_cap: usize,
    /// Fuel for requests that specify none (`None` = unmetered).
    pub default_fuel: Option<u64>,
    /// Deadline for requests that specify none, mapped to fuel.
    pub default_timeout_ms: Option<u64>,
    /// Call-depth limit (`None` = the engine default).
    pub max_depth: Option<usize>,
    /// Run the full optimization pass manager on the compiled program.
    pub optimize: bool,
    /// Execute under the soundness sentinel with per-request
    /// quarantine→recompile→retry recovery.
    pub checked: bool,
    /// Violation retries per request before degrading to the
    /// unoptimized program.
    pub max_retries: u32,
    /// Deadline→fuel calibration.
    pub steps_per_ms: u64,
    /// Analysis resource budget (degrades, never fails).
    pub budget: Budget,
    /// Analysis worker threads per SCC wave.
    pub jobs: usize,
    /// Persistent escape-summary cache path.
    pub summary_cache: Option<PathBuf>,
    /// Generational collection in each worker's heap (see
    /// `HeapConfig::gen_gc`).
    pub gen_gc: bool,
    /// Worker nursery size in KiB (see `HeapConfig::nursery_kb`).
    pub nursery_kb: usize,
    /// Deliberate unsound stack claims (sentinel/chaos testing): forced
    /// on every compile, then neutralized site-by-site as checked-mode
    /// violations quarantine them — exactly how a genuine analysis bug
    /// would be worn down at runtime.
    pub sabotage: SabotagePlan,
    /// The source file the program was loaded from. Enables
    /// `{"op":"reload"}` without inline source and `--watch`.
    pub source_path: Option<PathBuf>,
    /// Poll `source_path` for edits and hot-reload on change.
    pub watch: bool,
    /// Directory for the crash-bundle ring (`None` disables the flight
    /// recorder).
    pub crash_dir: Option<PathBuf>,
    /// Maximum bundles kept in the crash ring.
    pub crash_ring_cap: usize,
    /// Crash-signature repeat count at which the implicated site is
    /// quarantined server-wide.
    pub crash_escalate_after: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            default_fuel: None,
            default_timeout_ms: None,
            max_depth: None,
            optimize: true,
            checked: false,
            max_retries: 4,
            steps_per_ms: DEFAULT_STEPS_PER_MS,
            budget: Budget::unlimited(),
            jobs: 1,
            summary_cache: None,
            gen_gc: HeapConfig::default().gen_gc,
            nursery_kb: HeapConfig::default().nursery_kb,
            sabotage: SabotagePlan::default(),
            source_path: None,
            watch: false,
            crash_dir: None,
            crash_ring_cap: 16,
            crash_escalate_after: 2,
        }
    }
}

/// A server failure (the *server's* — guest failures are responses).
#[derive(Debug)]
pub enum ServeError {
    /// The program did not compile; the server never started.
    Compile(String),
    /// Socket setup failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compile(m) => write!(f, "compile error: {m}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Final server counters, returned by [`serve`] after a clean drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests answered `ok`.
    pub served_ok: u64,
    /// Requests answered with a typed guest failure.
    pub guest_errors: u64,
    /// Worker panics (each also replaced a worker).
    pub panics: u64,
    /// Requests that succeeded only after checked-mode degradation.
    pub degraded: u64,
    /// Requests shed at admission (`overloaded` + `shutting_down`).
    pub shed: u64,
    /// Malformed frames answered `bad_request`.
    pub bad_frames: u64,
    /// Sites quarantined by checked-mode violations.
    pub quarantined_sites: u64,
    /// Successful hot reloads (epoch swaps).
    pub reloads_ok: u64,
    /// Rejected reloads (broken edits; the old epoch stayed live).
    pub reloads_failed: u64,
    /// Replaced epochs fully drained and reclaimed.
    pub epochs_retired: u64,
    /// Epochs reclaimed while still carrying an in-flight count — a
    /// request vanished without a response. Must stay zero.
    pub epoch_leaks: u64,
    /// Crash bundles written to the flight-recorder ring.
    pub crash_bundles: u64,
}

#[derive(Default)]
pub(crate) struct Stats {
    served_ok: AtomicU64,
    guest_errors: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    bad_frames: AtomicU64,
    quarantined_sites: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
    pub(crate) epochs_retired: AtomicU64,
    pub(crate) epoch_leaks: AtomicU64,
    crash_bundles: AtomicU64,
}

impl Stats {
    fn report(&self) -> ServerReport {
        ServerReport {
            served_ok: self.served_ok.load(Ordering::Relaxed),
            guest_errors: self.guest_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            quarantined_sites: self.quarantined_sites.load(Ordering::Relaxed),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_failed: self.reloads_failed.load(Ordering::Relaxed),
            epochs_retired: self.epochs_retired.load(Ordering::Relaxed),
            epoch_leaks: self.epoch_leaks.load(Ordering::Relaxed),
            crash_bundles: self.crash_bundles.load(Ordering::Relaxed),
        }
    }

    fn render(&self) -> String {
        let r = self.report();
        format!(
            "ok={} guest_errors={} panics={} degraded={} shed={} bad_frames={} quarantined={} \
             reloads_ok={} reloads_failed={} epochs_retired={} epoch_leaks={} crash_bundles={}",
            r.served_ok,
            r.guest_errors,
            r.panics,
            r.degraded,
            r.shed,
            r.bad_frames,
            r.quarantined_sites,
            r.reloads_ok,
            r.reloads_failed,
            r.epochs_retired,
            r.epoch_leaks,
            r.crash_bundles
        )
    }
}

/// Locks a mutex, recovering from poisoning: the protected values
/// (queue, stats, client streams) stay structurally valid across a
/// worker panic, and crash-only recovery must keep serving.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Bounded MPMC admission queue
// ---------------------------------------------------------------------

/// Why admission failed.
enum AdmitError {
    /// The queue is at capacity — shed with `overloaded`.
    Full,
    /// The server is draining — shed with `shutting_down`.
    Closed,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue (std's mpsc channel is
/// single-consumer, and the pool needs any-worker pickup).
struct BoundedQueue<T> {
    cap: usize,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admission: never blocks, never silently drops.
    fn try_push(&self, item: T) -> Result<(), (AdmitError, T)> {
        let mut g = lock(&self.inner);
        if g.closed {
            return Err((AdmitError::Closed, item));
        }
        if g.items.len() >= self.cap {
            return Err((AdmitError::Full, item));
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained — the
    /// worker-pool exit condition that guarantees every admitted
    /// request is answered.
    fn pop(&self) -> Option<T> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .ready
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Items currently queued (a point-in-time reading for `healthz`).
    fn len(&self) -> usize {
        lock(&self.inner).items.len()
    }

    fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------

type SharedWriter = Arc<Mutex<UnixStream>>;

struct Job {
    req: EvalRequest,
    /// The raw request line, verbatim, for crash bundles.
    raw: String,
    out: SharedWriter,
    /// The epoch the request was admitted under; the worker executes it
    /// there even if a reload lands first.
    epoch: Arc<Epoch>,
}

/// The reload engine: a lazily seeded incremental re-analyzer. Seeded
/// from the live epoch's source on the first reload, then driven by
/// `update_source` — which rolls back wholesale on broken edits, so a
/// failed reload leaves both the engine and the epoch untouched. The
/// solver state *is* the cross-epoch summary carryover: unchanged SCCs
/// are reused, only dirtied ones re-solve.
struct ReloadState {
    inc: Option<Incremental>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    /// Stop accepting connections (set by a shutdown request).
    stopping: AtomicBool,
    /// Hard-cancel flag shared with every worker's engine.
    cancel: Arc<AtomicBool>,
    /// All admitted work answered; readers may exit.
    done: AtomicBool,
    stats: Arc<Stats>,
    /// The current epoch; admission clones the `Arc`, reload swaps it.
    current: RwLock<Arc<Epoch>>,
    /// Next epoch id (the boot program is epoch 1).
    epoch_seq: AtomicU64,
    reload: Mutex<ReloadState>,
    /// Quarantine carryover across epochs, keyed by content hash.
    qmap: Mutex<CarryMap>,
    /// Flight recorder (`None` when disabled or its dir was unusable).
    recorder: Mutex<Option<BundleRing>>,
    /// Crash-signature occurrence counts, for auto-escalation.
    crash_counts: Mutex<HashMap<String, u32>>,
}

impl Shared {
    fn current_epoch(&self) -> Arc<Epoch> {
        self.current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

fn respond(out: &SharedWriter, line: &str) {
    // A vanished client is not a server failure; the write result is
    // deliberately ignored.
    let mut g = lock(out);
    let _ = g.write_all(line.as_bytes());
    let _ = g.write_all(b"\n");
    let _ = g.flush();
}

/// Writes the job's response and releases its in-flight pin, in that
/// order — an epoch counts as drained only once every admitted request
/// has its answer on the wire.
fn finish(job: &Job, line: &str) {
    respond(&job.out, line);
    job.epoch.inflight.fetch_sub(1, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Compilation (self-contained glue over the leaf crates; the root
// crate's pipeline depends on this crate's consumer, not vice versa)
// ---------------------------------------------------------------------

/// Runs the governed, SCC-scheduled analysis on `src`.
fn analyze_for_serve(src: &str, cfg: &ServeConfig) -> Result<Analysis, String> {
    let sched = ScheduleOptions {
        jobs: cfg.jobs,
        summary_cache: cfg.summary_cache.clone(),
    };
    analyze_source_scheduled(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        cfg.budget,
        &sched,
    )
    .map_err(|e| e.to_string())
}

/// Compiles `src` through the governed, SCC-scheduled analysis and the
/// optimization pass manager, minus any quarantined sites.
///
/// # Errors
///
/// A rendered front-end diagnostic (syntax/type errors).
pub fn compile_program(
    src: &str,
    cfg: &ServeConfig,
    quarantine: &QuarantineSet,
    optimize: bool,
) -> Result<IrProgram, String> {
    let analysis = analyze_for_serve(src, cfg)?;
    let mut ir = lower_program(&analysis.program, &analysis.info);
    if optimize {
        nml_opt::optimize(&mut ir, &analysis, &OptOptions::default());
    }
    sabotage_stack(&mut ir, &cfg.sabotage);
    if !quarantine.is_empty() {
        apply_quarantine(&mut ir, quarantine);
    }
    Ok(ir)
}

// ---------------------------------------------------------------------
// Request execution (worker side)
// ---------------------------------------------------------------------

/// Turns a JSON argument into a guest value (integers, booleans, and
/// arrays as lists, built innermost-first on the worker's heap).
///
/// Recursion is bounded by the same depth cap as the protocol parser
/// (`json::MAX_DEPTH`); the parser already enforces it on every frame,
/// this re-check keeps the worker's stack safe against any future
/// caller that builds a `Json` some other way.
fn build_arg<'p>(heap: &mut Heap<'p>, j: &Json, depth: usize) -> Result<Value<'p>, String> {
    if depth >= crate::json::MAX_DEPTH {
        return Err(format!(
            "argument nesting deeper than {}",
            crate::json::MAX_DEPTH
        ));
    }
    match j {
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Arr(items) => {
            let mut vs = Vec::with_capacity(items.len());
            for it in items {
                vs.push(build_arg(heap, it, depth + 1)?);
            }
            let mut acc = Value::Nil;
            for v in vs.into_iter().rev() {
                let cell = heap.alloc(v, acc, AllocMode::Heap);
                acc = Value::Pair(cell);
            }
            Ok(acc)
        }
        other => Err(format!(
            "unsupported argument {other} (int, bool, or array)"
        )),
    }
}

/// Renders a result value (same surface syntax as `nmlc run`).
///
/// Iterative with an explicit worklist: rendering depth tracks the
/// value's cons-in-car/tuple nesting, which is data-shaped and not
/// under the server's control, and a native stack overflow aborts the
/// process instead of unwinding — straight past `catch_unwind`,
/// defeating crash isolation.
fn render_value(heap: &Heap<'_>, v: &Value<'_>) -> Result<String, RuntimeError> {
    enum Task<'p> {
        /// Render one value.
        Val(Value<'p>),
        /// Continue a list whose remaining tail is this value.
        Tail(Value<'p>),
        /// Emit a literal (closers and separators).
        Lit(&'static str),
    }
    let mut out = String::new();
    let mut work = vec![Task::Val(v.clone())];
    while let Some(task) = work.pop() {
        match task {
            Task::Lit(s) => out.push_str(s),
            Task::Val(v) => match v {
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Bool(b) => out.push_str(if b { "true" } else { "false" }),
                Value::Nil => out.push_str("[]"),
                Value::Tuple(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push('(');
                    work.push(Task::Lit(")"));
                    work.push(Task::Val(t));
                    work.push(Task::Lit(", "));
                    work.push(Task::Val(h));
                }
                Value::Pair(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push('[');
                    work.push(Task::Tail(t));
                    work.push(Task::Val(h));
                }
                other => {
                    out.push('<');
                    out.push_str(other.kind());
                    out.push('>');
                }
            },
            Task::Tail(v) => match v {
                Value::Pair(c) => {
                    let h = heap.car(c)?;
                    let t = heap.cdr(c)?;
                    out.push_str(", ");
                    work.push(Task::Tail(t));
                    work.push(Task::Val(h));
                }
                // Nil or an improper tail ends the list, as before.
                _ => out.push(']'),
            },
        }
    }
    Ok(out)
}

pub(crate) enum ReqError {
    /// The request itself was unusable (bad argument shape).
    Bad(String),
    /// The guest program failed.
    Rt(RuntimeError),
}

impl From<RuntimeError> for ReqError {
    fn from(e: RuntimeError) -> Self {
        ReqError::Rt(e)
    }
}

/// The per-request fuel: explicit fuel, else the deadline mapping, else
/// the server defaults.
pub(crate) fn request_fuel(req: &EvalRequest, cfg: &ServeConfig) -> Option<u64> {
    req.fuel
        .or_else(|| req.timeout_ms.map(|ms| ms.saturating_mul(cfg.steps_per_ms)))
        .or(cfg.default_fuel)
        .or_else(|| {
            cfg.default_timeout_ms
                .map(|ms| ms.saturating_mul(cfg.steps_per_ms))
        })
}

/// Runs one request on `vm`, restoring the machine's inert fault plan
/// and unlimited fuel afterwards (also on the error paths — the next
/// request must not inherit this one's knobs).
pub(crate) fn execute<'p>(
    vm: &mut Vm<'p>,
    req: &EvalRequest,
    fuel: Option<u64>,
) -> Result<(String, u64), ReqError> {
    vm.set_fault_plan(req.fault.clone());
    vm.set_fuel(fuel);
    let before = vm.heap.stats.steps;
    let r = (|| -> Result<String, ReqError> {
        let v = match &req.call {
            Some(name) => {
                // Probe without interning: the interner is append-only
                // and process-wide, so interning every bogus
                // client-supplied name would leak for the life of the
                // server. Every name in the compiled program is already
                // interned, so a miss is always unbound.
                let sym = Symbol::lookup(name)
                    .ok_or_else(|| ReqError::Rt(RuntimeError::Unbound { name: name.clone() }))?;
                let mut args = Vec::with_capacity(req.args.len());
                for a in &req.args {
                    args.push(build_arg(&mut vm.heap, a, 0).map_err(ReqError::Bad)?);
                }
                vm.call(sym, args)?
            }
            None => vm.run()?,
        };
        Ok(render_value(&vm.heap, &v)?)
    })();
    let steps = vm.heap.stats.steps.saturating_sub(before);
    vm.set_fault_plan(FaultPlan::default());
    vm.set_fuel(None);
    r.map(|result| (result, steps))
}

/// The execution-shaping interpreter configuration (no cancel flag);
/// shared between workers and in-process replay.
pub(crate) fn base_interp_config(cfg: &ServeConfig, checked: bool) -> InterpConfig {
    let mut c = InterpConfig {
        heap: HeapConfig {
            checked,
            gen_gc: cfg.gen_gc,
            nursery_kb: cfg.nursery_kb,
            ..HeapConfig::default()
        },
        ..InterpConfig::default()
    };
    if let Some(d) = cfg.max_depth {
        c.max_depth = d;
    }
    c
}

fn worker_interp_config(cfg: &ServeConfig, sh: &Shared, checked: bool) -> InterpConfig {
    let mut c = base_interp_config(cfg, checked);
    c.cancel = Some(sh.cancel.clone());
    c
}

// ---------------------------------------------------------------------
// Crash forensics
// ---------------------------------------------------------------------

/// Extracts a printable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Records one crash: writes a bundle to the flight-recorder ring and
/// counts the signature; a signature seen `crash_escalate_after` times
/// escalates to quarantining the implicated site server-wide (in both
/// the admission epoch and the current one, plus the carry map so the
/// decision survives future reloads).
fn record_crash(
    sh: &Shared,
    cfg: &ServeConfig,
    job: &Job,
    kind: &str,
    signature: &str,
    site: Option<SiteId>,
    steps: u64,
) {
    // Capture the bundle before any escalation below mutates the
    // epoch's quarantine: replay must see the set that produced the
    // crash, or it cannot reproduce it.
    let bundle = CrashBundle {
        version: 1,
        kind: kind.to_owned(),
        signature: signature.to_owned(),
        epoch: job.epoch.id,
        program_hash: format!("{:016x}", job.epoch.program_hash),
        src: job.epoch.src.clone(),
        request: job.raw.trim().to_owned(),
        site: site.map(|s| s.0),
        config: BundleConfig::capture(
            cfg,
            job.epoch
                .quarantine_snapshot()
                .iter()
                .map(|s| s.0)
                .collect(),
        ),
        steps,
    };
    {
        let mut rec = lock(&sh.recorder);
        if let Some(ring) = rec.as_mut() {
            match ring.push(&bundle) {
                Ok(_) => {
                    sh.stats.crash_bundles.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => eprintln!("serve: crash bundle write failed: {e}"),
            }
        }
    }
    let repeats = {
        let mut g = lock(&sh.crash_counts);
        let c = g.entry(signature.to_owned()).or_insert(0);
        *c += 1;
        *c
    };
    if repeats >= cfg.crash_escalate_after {
        if let Some(site) = site {
            let mut qmap = lock(&sh.qmap);
            if job.epoch.record_quarantine(site, &mut qmap) {
                sh.stats.quarantined_sites.fetch_add(1, Ordering::Relaxed);
            }
            let cur = sh.current_epoch();
            if !Arc::ptr_eq(&cur, &job.epoch) && cur.record_quarantine(site, &mut qmap) {
                sh.stats.quarantined_sites.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Checked-mode recovery, entirely within the failing request: record
/// the disproved site in the admission epoch's quarantine (and the
/// cross-epoch carry map), recompile with every quarantined site's
/// optimization disabled, and retry — up to `max_retries` times, then
/// once more fully unoptimized (which makes no claims and cannot
/// violate). Other workers keep serving the original program; requests
/// that hit the same site degrade the same way, in isolation.
fn recover_violation(
    cfg: &ServeConfig,
    sh: &Shared,
    job: &Job,
    fuel: Option<u64>,
    first: Box<nml_runtime::SoundnessViolation>,
) -> String {
    let epoch = &job.epoch;
    let req = &job.req;
    let site_label = match first.site {
        Some(s) => epoch.site_label(s),
        None => "<unattributed>".to_owned(),
    };
    record_crash(
        sh,
        cfg,
        job,
        "soundness_violation",
        &format!("soundness:{site_label}:{}", first.claim),
        first.site,
        0,
    );
    let mut violation = Some(first);
    let mut attempt = 0u32;
    loop {
        if let Some(v) = violation.take() {
            if let Some(site) = v.site {
                let mut qmap = lock(&sh.qmap);
                if epoch.record_quarantine(site, &mut qmap) {
                    sh.stats.quarantined_sites.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        attempt += 1;
        let exhausted = attempt > cfg.max_retries;
        let q = epoch.quarantine_snapshot();
        // While retrying, stay optimized-but-checked minus the
        // quarantined sites; once exhausted, fall back to the
        // unoptimized, unchecked program.
        let (optimize, checked) = if exhausted {
            (false, false)
        } else {
            (cfg.optimize, true)
        };
        // The exhausted fallback must make no claims at all — including
        // sabotaged ones — so it compiles from a claim-free config.
        let clean;
        let compile_cfg = if exhausted && !cfg.sabotage.is_empty() {
            clean = ServeConfig {
                sabotage: SabotagePlan::default(),
                ..cfg.clone()
            };
            &clean
        } else {
            cfg
        };
        let ir = match compile_program(&epoch.src, compile_cfg, &q, optimize) {
            Ok(ir) => ir,
            Err(m) => {
                return proto::error_response_at(
                    req.id,
                    ErrorKind::Runtime,
                    &format!("recovery recompile failed: {m}"),
                    Some(epoch.id),
                )
            }
        };
        let config = worker_interp_config(cfg, sh, checked);
        let outcome = Vm::with_config(&ir, config)
            .map_err(ReqError::Rt)
            .and_then(|mut vm| execute(&mut vm, req, fuel));
        match outcome {
            Ok((result, steps)) => {
                sh.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                sh.stats.degraded.fetch_add(1, Ordering::Relaxed);
                return proto::ok_response_at(req.id, &result, steps, true, Some(epoch.id));
            }
            Err(ReqError::Rt(RuntimeError::Soundness(v))) if !exhausted => {
                violation = Some(v);
            }
            Err(e) => return guest_error_response(req.id, sh, e, Some(epoch.id)),
        }
    }
}

fn guest_error_response(id: Option<i64>, sh: &Shared, e: ReqError, epoch: Option<u64>) -> String {
    match e {
        ReqError::Bad(m) => {
            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            proto::error_response_at(id, ErrorKind::BadRequest, &m, epoch)
        }
        ReqError::Rt(e) => {
            sh.stats.guest_errors.fetch_add(1, Ordering::Relaxed);
            proto::error_response_at(id, ErrorKind::of_runtime(&e), &e.to_string(), epoch)
        }
    }
}

/// One worker: owns a `Vm` (heap included) over its pinned epoch's
/// program, serves jobs until the queue closes and drains. A panic
/// during a request is caught, answered, recorded as a crash bundle,
/// and the machine rebuilt from scratch — crash-only recovery, nothing
/// from the poisoned heap survives. When a job from a *different* epoch
/// arrives (a reload landed), the worker re-pins and rebuilds once;
/// steady-state traffic still runs compile-once/run-many.
fn worker_loop(cfg: &ServeConfig, sh: &Shared) {
    // A job popped under an old pin, waiting for the machine rebuild.
    let mut carried: Option<Job> = None;
    'epoch: loop {
        let first = match carried.take().or_else(|| sh.queue.pop()) {
            Some(j) => j,
            None => return,
        };
        let epoch = first.epoch.clone();
        let build = || Vm::with_config(&epoch.program, worker_interp_config(cfg, sh, cfg.checked));
        let mut vm = build().ok();
        let mut next = Some(first);
        loop {
            let job = match next.take().or_else(|| sh.queue.pop()) {
                Some(j) => j,
                None => return,
            };
            if !Arc::ptr_eq(&job.epoch, &epoch) {
                // Reload landed: finish this pin, rebuild on the job's
                // epoch. `vm` (borrowing `epoch`) drops here, so the
                // old epoch can drain.
                carried = Some(job);
                continue 'epoch;
            }
            if vm.is_none() {
                vm = build().ok();
            }
            let Some(m) = vm.as_mut() else {
                sh.stats.guest_errors.fetch_add(1, Ordering::Relaxed);
                finish(
                    &job,
                    &proto::error_response_at(
                        job.req.id,
                        ErrorKind::Runtime,
                        "worker failed to initialize the program",
                        Some(epoch.id),
                    ),
                );
                continue;
            };
            let req = &job.req;
            let fuel = request_fuel(req, cfg);
            let run = catch_unwind(AssertUnwindSafe(|| match execute(m, req, fuel) {
                Ok((result, steps)) => {
                    sh.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                    proto::ok_response_at(req.id, &result, steps, false, Some(epoch.id))
                }
                Err(ReqError::Rt(RuntimeError::Soundness(v))) if cfg.checked => {
                    recover_violation(cfg, sh, &job, fuel, v)
                }
                Err(e) => guest_error_response(req.id, sh, e, Some(epoch.id)),
            }));
            match run {
                Ok(line) => finish(&job, &line),
                Err(payload) => {
                    let steps = vm.as_ref().map_or(0, |m| m.heap.stats.steps);
                    // Crash-only: the poisoned machine (heap and all) is
                    // dropped; the next job gets a fresh one.
                    vm = None;
                    sh.stats.panics.fetch_add(1, Ordering::Relaxed);
                    let msg = panic_message(payload.as_ref());
                    record_crash(
                        sh,
                        cfg,
                        &job,
                        "worker_panicked",
                        &format!("panic:{msg}"),
                        None,
                        steps,
                    );
                    finish(
                        &job,
                        &proto::error_response_at(
                            job.req.id,
                            ErrorKind::WorkerPanicked,
                            "worker panicked on this request and was replaced",
                            Some(epoch.id),
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------

/// Validates and installs a new program epoch.
///
/// Compilation and re-analysis happen on the calling (reader or
/// watcher) thread while the workers keep serving the old epoch; the
/// current-slot write lock is held only for the pointer swap, so
/// admission stalls by at most one lock handoff. Any error — syntax,
/// type, analysis — leaves the live epoch and the reload engine
/// untouched (the incremental engine rolls back wholesale).
fn do_reload(sh: &Shared, cfg: &ServeConfig, new_src: &str) -> Result<String, String> {
    let mut eng = lock(&sh.reload);
    if eng.inc.is_none() {
        // First reload: seed the incremental engine from the live
        // epoch's source (which compiled at boot, so this cannot fail
        // on a healthy server; surface the error if it somehow does).
        let boot_src = sh.current_epoch().src.clone();
        let program =
            nml_syntax::parse_program(&boot_src).map_err(|e| format!("re-seed parse: {e}"))?;
        let info = nml_types::infer_program(&program).map_err(|e| format!("re-seed types: {e}"))?;
        eng.inc = Some(Incremental::new(
            program,
            info,
            EngineConfig::default(),
            cfg.budget,
        ));
    }
    let inc = eng.inc.as_mut().expect("seeded above");
    let analysis = inc.update_source(new_src).map_err(|e| e.to_string())?;
    let solved = analysis.schedule.sccs_solved;
    let reused = analysis.schedule.sccs_reused;
    let id = sh.epoch_seq.fetch_add(1, Ordering::SeqCst);
    let epoch = {
        let qmap = lock(&sh.qmap);
        Epoch::build(id, analysis, new_src, cfg, &qmap, sh.stats.clone())
    };
    let carried = epoch.quarantine_len();
    let hash = epoch.program_hash;
    let fresh = Arc::new(epoch);
    {
        let mut cur = sh
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cur.retire();
        *cur = fresh;
    }
    Ok(format!(
        "epoch {id} hash {hash:016x} sccs_solved {solved} sccs_reused {reused} carried_quarantine {carried}"
    ))
}

/// Resolves the reload source (inline from the request, else the
/// server's source file), runs [`do_reload`], and counts the outcome.
fn reload_from(sh: &Shared, cfg: &ServeConfig, explicit: Option<String>) -> Result<String, String> {
    let r = (|| {
        let src = match explicit {
            Some(s) => s,
            None => match &cfg.source_path {
                Some(p) => std::fs::read_to_string(p)
                    .map_err(|e| format!("cannot re-read {}: {e}", p.display()))?,
                None => {
                    return Err(
                        "reload needs inline \"src\" (server was not started from a file)"
                            .to_owned(),
                    )
                }
            },
        };
        do_reload(sh, cfg, &src)
    })();
    match &r {
        Ok(_) => sh.stats.reloads_ok.fetch_add(1, Ordering::Relaxed),
        Err(_) => sh.stats.reloads_failed.fetch_add(1, Ordering::Relaxed),
    };
    r
}

/// `--watch`: polls the source file (content-hash based, immune to the
/// mtime-tick miss) and hot-reloads on change; a broken edit is
/// reported and the old epoch stays live, exactly like `analyze
/// --watch`.
fn watch_loop(path: PathBuf, boot_src: &str, cfg: &ServeConfig, sh: &Shared) {
    let mut fw = crate::watch::FileWatch::seeded(&path, boot_src);
    loop {
        // 100ms poll period, sliced so shutdown is prompt.
        for _ in 0..10 {
            if sh.stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(new_src) = fw.poll() {
            match reload_from(sh, cfg, Some(new_src)) {
                Ok(d) => eprintln!("watch: reloaded: {d}"),
                Err(m) => eprintln!("watch: reload rejected (old epoch stays live): {m}"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection readers + acceptor
// ---------------------------------------------------------------------

fn handle_line(line: &str, out: &SharedWriter, sh: &Shared, cfg: &ServeConfig) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    match proto::parse_request(line) {
        Err((id, msg)) => {
            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            respond(out, &proto::error_response(id, ErrorKind::BadRequest, &msg));
        }
        Ok(Request::Ping { id }) => {
            respond(out, &proto::ok_response(id, "pong", 0, false));
        }
        Ok(Request::Stats { id }) => {
            let ep = sh.current_epoch();
            let msg = format!("{} epoch={}", sh.stats.render(), ep.id);
            respond(out, &proto::ok_response(id, &msg, 0, false));
        }
        Ok(Request::Healthz { id }) => {
            // Cheap and inline: answered by the reader thread, so it
            // stays responsive under a saturated worker pool — the
            // client's circuit breaker probes it to half-open.
            let ep = sh.current_epoch();
            let msg = format!(
                "ok epoch={} inflight={} queued={} quarantined={}",
                ep.id,
                ep.inflight.load(Ordering::SeqCst),
                sh.queue.len(),
                ep.quarantine_len()
            );
            respond(out, &proto::ok_response(id, &msg, 0, false));
        }
        Ok(Request::Reload { id, src }) => match reload_from(sh, cfg, src) {
            Ok(desc) => respond(out, &proto::ok_response(id, &desc, 0, false)),
            Err(m) => respond(out, &proto::error_response(id, ErrorKind::CompileError, &m)),
        },
        Ok(Request::Shutdown { id, now }) => {
            // Respond first (the reply must not race the drain), then
            // stop admissions; "now" also cancels in-flight work.
            respond(
                out,
                &proto::ok_response(id, if now { "stopping" } else { "draining" }, 0, false),
            );
            if now {
                sh.cancel.store(true, Ordering::SeqCst);
            }
            sh.stopping.store(true, Ordering::SeqCst);
            sh.queue.close();
        }
        Ok(Request::Eval(req)) => {
            // Admission pins the current epoch: the request runs there
            // even if a reload swaps the slot before a worker picks it
            // up. The pin is released by `finish` after the response.
            let epoch = sh.current_epoch();
            epoch.inflight.fetch_add(1, Ordering::SeqCst);
            let job = Job {
                req,
                raw: line.to_owned(),
                out: out.clone(),
                epoch,
            };
            match sh.queue.try_push(job) {
                Ok(()) => {}
                Err((AdmitError::Full, job)) => {
                    job.epoch.inflight.fetch_sub(1, Ordering::SeqCst);
                    sh.stats.shed.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &job.out,
                        &proto::error_response(
                            job.req.id,
                            ErrorKind::Overloaded,
                            "request queue is full; retry later",
                        ),
                    );
                }
                Err((AdmitError::Closed, job)) => {
                    job.epoch.inflight.fetch_sub(1, Ordering::SeqCst);
                    sh.stats.shed.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &job.out,
                        &proto::error_response(
                            job.req.id,
                            ErrorKind::ShuttingDown,
                            "server is shutting down",
                        ),
                    );
                }
            }
        }
    }
}

fn reader_loop(stream: UnixStream, sh: &Shared, cfg: &ServeConfig) {
    // The timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let out: SharedWriter = Arc::new(Mutex::new(writer));
    let mut reader = BufReader::new(stream);
    // Accumulate bytes, not a String: `read_line` discards its partial
    // tail when a read times out mid-frame and the tail is not valid
    // UTF-8 (a multi-byte character split across the timeout boundary
    // would silently corrupt the frame). `read_until` keeps every byte
    // consumed from the socket; UTF-8 is validated per complete line
    // and a bad line becomes a `bad_request` response.
    let mut buf = Vec::new();
    loop {
        if sh.done.load(Ordering::Relaxed) {
            return;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(n) => {
                // `read_until` returns Ok only at the delimiter or at
                // EOF (n == 0 and nothing new once drained).
                let eof = n == 0;
                if !buf.is_empty() && (eof || buf.ends_with(b"\n")) {
                    match std::str::from_utf8(&buf) {
                        Ok(line) => handle_line(line, &out, sh, cfg),
                        Err(_) => {
                            sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                            respond(
                                &out,
                                &proto::error_response(
                                    None,
                                    ErrorKind::BadRequest,
                                    "frame is not valid UTF-8",
                                ),
                            );
                        }
                    }
                    buf.clear();
                }
                if eof {
                    return; // client closed
                }
            }
            // Timeout: `buf` keeps the partial frame; poll again.
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// The server entry
// ---------------------------------------------------------------------

/// Compiles `src` once and serves eval requests on a Unix socket at
/// `socket` until a `shutdown` request, hot-reloading the program on
/// `{"op":"reload"}` (and on source edits under `--watch`). Returns the
/// final counters after a clean drain (every admitted request answered,
/// all threads joined, socket file removed).
///
/// # Errors
///
/// [`ServeError::Compile`] if the program doesn't compile (the socket
/// is never created), [`ServeError::Io`] for socket setup failures.
pub fn serve(src: &str, socket: &Path, cfg: &ServeConfig) -> Result<ServerReport, ServeError> {
    let stats = Arc::new(Stats::default());
    let analysis = analyze_for_serve(src, cfg).map_err(ServeError::Compile)?;
    let qmap = CarryMap::new();
    let boot = Epoch::build(1, &analysis, src, cfg, &qmap, stats.clone());
    drop(analysis);
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket).map_err(ServeError::Io)?;
    listener.set_nonblocking(true).map_err(ServeError::Io)?;
    let recorder = match &cfg.crash_dir {
        Some(dir) => match BundleRing::new(dir, cfg.crash_ring_cap) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("serve: flight recorder disabled ({}: {e})", dir.display());
                None
            }
        },
        None => None,
    };
    let shared = Shared {
        queue: BoundedQueue::new(cfg.queue_cap),
        stopping: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        done: AtomicBool::new(false),
        stats: stats.clone(),
        current: RwLock::new(Arc::new(boot)),
        epoch_seq: AtomicU64::new(2),
        reload: Mutex::new(ReloadState { inc: None }),
        qmap: Mutex::new(qmap),
        recorder: Mutex::new(recorder),
        crash_counts: Mutex::new(HashMap::new()),
    };
    let sh = &shared;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| s.spawn(move || worker_loop(cfg, sh)))
            .collect();
        if cfg.watch {
            if let Some(path) = cfg.source_path.clone() {
                s.spawn(move || watch_loop(path, src, cfg, sh));
            }
        }
        while !sh.stopping.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    s.spawn(move || reader_loop(stream, sh, cfg));
                }
                Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Shutdown: no new admissions (idempotent if the handler
        // already closed the queue), drain the pool, then release the
        // readers.
        sh.queue.close();
        for w in workers {
            let _ = w.join();
        }
        sh.done.store(true, Ordering::SeqCst);
    });
    let _ = std::fs::remove_file(socket);
    // Drop the final epoch before reading the counters, so its leak
    // accounting (if any) lands in the report.
    drop(shared);
    Ok(stats.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100k levels of cons-in-car nesting, built directly on a heap
    /// (the guest type system bounds nesting per program, but the
    /// renderer must not bank on that): recursive rendering would
    /// overflow the native stack and abort the process.
    #[test]
    fn render_value_handles_deep_nesting_iteratively() {
        let mut heap = Heap::new(HeapConfig::default());
        let mut acc = Value::Nil;
        for _ in 0..100_000 {
            let cell = heap.alloc(acc, Value::Nil, AllocMode::Heap);
            acc = Value::Pair(cell);
        }
        let s = render_value(&heap, &acc).expect("render");
        assert_eq!(s.len(), 2 * 100_000 + 2, "100k nested singleton lists");
        assert!(s.starts_with("[[[") && s.ends_with("]]]"));

        // Deep tuple-in-tuple nesting exercises the other recursive arm.
        let mut acc = Value::Int(1);
        for _ in 0..100_000 {
            let cell = heap.alloc(acc, Value::Int(0), AllocMode::Heap);
            acc = Value::Tuple(cell);
        }
        let s = render_value(&heap, &acc).expect("render tuples");
        assert!(
            s.starts_with("(((") && s.ends_with("0), 0)"),
            "{}",
            &s[s.len() - 16..]
        );
    }

    #[test]
    fn render_value_list_shapes() {
        let mut heap = Heap::new(HeapConfig::default());
        let inner = heap.alloc(Value::Int(2), Value::Nil, AllocMode::Heap);
        let outer = heap.alloc(Value::Int(1), Value::Pair(inner), AllocMode::Heap);
        let s = render_value(&heap, &Value::Pair(outer)).expect("render");
        assert_eq!(s, "[1, 2]");
        let t = heap.alloc(Value::Int(1), Value::Bool(true), AllocMode::Heap);
        assert_eq!(render_value(&heap, &Value::Tuple(t)).unwrap(), "(1, true)");
        assert_eq!(render_value(&heap, &Value::Nil).unwrap(), "[]");
    }

    /// `build_arg` is depth-limited in its own right, independent of
    /// the protocol parser's limit.
    #[test]
    fn build_arg_rejects_excessive_nesting() {
        let mut deep = Json::Int(1);
        for _ in 0..(crate::json::MAX_DEPTH + 1) {
            deep = Json::Arr(vec![deep]);
        }
        let mut heap = Heap::new(HeapConfig::default());
        let err = build_arg(&mut heap, &deep, 0).unwrap_err();
        assert!(err.contains("nesting"), "{err}");

        // At the boundary it still works.
        let mut ok = Json::Int(1);
        for _ in 0..(crate::json::MAX_DEPTH - 1) {
            ok = Json::Arr(vec![ok]);
        }
        assert!(build_arg(&mut heap, &ok, 0).is_ok());
    }
}
