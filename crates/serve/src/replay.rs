//! Deterministic in-process re-execution of crash bundles.
//!
//! [`replay`] rebuilds the exact program a crash bundle was captured
//! under — same source, same optimization/sabotage/quarantine
//! configuration — and runs the recorded request once on a fresh VM,
//! classifying the outcome against the bundle's recorded crash kind.
//! Everything that shaped the original execution is replayed from the
//! bundle (the raw request line carries the fault plan, seed, and
//! fuel); the one deliberate exception is the wall-clock analysis
//! deadline, which is *not* replayed — fuel is the deterministic
//! stand-in — so two consecutive replays of one bundle produce
//! byte-identical reports.
//!
//! [`minimize`] greedily shrinks the request's arguments (halving
//! lists, dropping elements, zeroing integers) while preserving the
//! crash kind and site attribution, with a shrink schedule drawn from
//! `nml-corpusgen`'s deterministic RNG. The fault plan is never touched:
//! it is usually the crash trigger itself.

use std::panic::{catch_unwind, AssertUnwindSafe};

use nml_corpusgen::Rng;
use nml_escape::Budget;
use nml_opt::{IrProgram, QuarantineSet, SabotagePlan, SiteId};
use nml_runtime::{RuntimeError, Vm};

use crate::bundle::{BundleConfig, CrashBundle};
use crate::json::Json;
use crate::proto::{parse_request, ErrorKind, Request};
use crate::server::{
    base_interp_config, compile_program, execute, panic_message, request_fuel, ReqError,
    ServeConfig,
};

/// The classified outcome of one replayed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Outcome kind: `"ok"`, a wire error kind, `"soundness_violation"`,
    /// or `"worker_panicked"`.
    pub kind: String,
    /// The rendered result (for `"ok"`) or failure message.
    pub message: String,
    /// Site attribution (soundness violations only), in the bundled
    /// program's site numbering.
    pub site: Option<u32>,
    /// Interpreter steps retired.
    pub steps: u64,
    /// Whether the outcome matches the bundle's recorded crash: same
    /// kind, and for soundness violations the same site.
    pub reproduced: bool,
}

/// The result of [`minimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Minimized {
    /// The smallest request line found that still reproduces the crash.
    pub request: String,
    /// Candidate executions spent.
    pub attempts: u32,
}

/// Reconstructs the serving configuration a bundle was captured under.
/// Topology fields (workers, queue) are irrelevant in-process; the
/// wall-clock budget deadline is intentionally dropped for determinism.
fn serve_config_of(b: &BundleConfig) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 1,
        default_fuel: b.default_fuel,
        default_timeout_ms: b.default_timeout_ms,
        max_depth: b.max_depth,
        optimize: b.optimize,
        checked: b.checked,
        max_retries: b.max_retries,
        steps_per_ms: b.steps_per_ms,
        budget: Budget {
            max_passes: b
                .budget_passes
                .map_or(u32::MAX, |p| p.min(u32::MAX as u64) as u32),
            max_nodes: b.budget_nodes.unwrap_or(u64::MAX),
            deadline: None,
        },
        jobs: 1,
        summary_cache: None,
        gen_gc: b.gen_gc,
        nursery_kb: b.nursery_kb,
        sabotage: SabotagePlan::stack(b.sabotage.iter().map(|s| SiteId(*s))),
        source_path: None,
        watch: false,
        crash_dir: None,
        crash_ring_cap: 1,
        crash_escalate_after: u32::MAX,
    }
}

fn quarantine_of(sites: &[u32]) -> QuarantineSet {
    let mut q = QuarantineSet::new();
    for s in sites {
        q.insert(SiteId(*s));
    }
    q
}

struct Outcome {
    kind: String,
    message: String,
    site: Option<u32>,
    steps: u64,
}

/// Runs `line` once on a fresh VM over `ir` and classifies the result.
fn run_once(ir: &IrProgram, cfg: &ServeConfig, line: &str) -> Result<Outcome, String> {
    let req = match parse_request(line.trim()) {
        Ok(Request::Eval(r)) => r,
        Ok(_) => return Err("bundle request is not an eval".to_owned()),
        Err((_, m)) => return Err(format!("bundle request does not parse: {m}")),
    };
    let fuel = request_fuel(&req, cfg);
    let mut vm =
        Vm::with_config(ir, base_interp_config(cfg, cfg.checked)).map_err(|e| e.to_string())?;
    let run = catch_unwind(AssertUnwindSafe(|| execute(&mut vm, &req, fuel)));
    let steps = vm.heap.stats.steps;
    Ok(match run {
        Err(payload) => Outcome {
            kind: "worker_panicked".to_owned(),
            message: panic_message(payload.as_ref()),
            site: None,
            steps,
        },
        Ok(Ok((result, steps))) => Outcome {
            kind: "ok".to_owned(),
            message: result,
            site: None,
            steps,
        },
        Ok(Err(ReqError::Rt(RuntimeError::Soundness(v)))) => Outcome {
            kind: "soundness_violation".to_owned(),
            message: v.to_string(),
            site: v.site.map(|s| s.0),
            steps,
        },
        Ok(Err(ReqError::Rt(e))) => Outcome {
            kind: ErrorKind::of_runtime(&e).wire().to_owned(),
            message: e.to_string(),
            site: None,
            steps,
        },
        Ok(Err(ReqError::Bad(m))) => Outcome {
            kind: "bad_request".to_owned(),
            message: m,
            site: None,
            steps,
        },
    })
}

fn reproduced(bundle: &CrashBundle, o: &Outcome) -> bool {
    o.kind == bundle.kind && (bundle.kind != "soundness_violation" || o.site == bundle.site)
}

/// Re-executes a crash bundle deterministically in-process.
///
/// # Errors
///
/// When the bundled source no longer compiles or the recorded request
/// line is unusable — replay infrastructure failures, not crash
/// outcomes (a reproducing crash is a *successful* replay).
pub fn replay(bundle: &CrashBundle) -> Result<ReplayReport, String> {
    let cfg = serve_config_of(&bundle.config);
    let quarantine = quarantine_of(&bundle.config.quarantine);
    let ir = compile_program(&bundle.src, &cfg, &quarantine, cfg.optimize)
        .map_err(|e| format!("bundled program does not compile: {e}"))?;
    let o = run_once(&ir, &cfg, &bundle.request)?;
    let reproduced = reproduced(bundle, &o);
    Ok(ReplayReport {
        kind: o.kind,
        message: o.message,
        site: o.site,
        steps: o.steps,
        reproduced,
    })
}

/// Renders a replay report. Contains no timing or environment data, so
/// two replays of one bundle render byte-identically.
pub fn render_report(bundle: &CrashBundle, r: &ReplayReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bundle: kind={} epoch={} program_hash={} signature={}\n",
        bundle.kind, bundle.epoch, bundle.program_hash, bundle.signature
    ));
    out.push_str(&format!("request: {}\n", bundle.request));
    out.push_str(&format!("outcome: kind={} steps={}\n", r.kind, r.steps));
    out.push_str(&format!("message: {}\n", r.message));
    match (r.site, bundle.site) {
        (Some(got), Some(want)) => {
            out.push_str(&format!("site: {got} (recorded {want})\n"));
        }
        (Some(got), None) => out.push_str(&format!("site: {got} (recorded none)\n")),
        (None, Some(want)) => out.push_str(&format!("site: none (recorded {want})\n")),
        (None, None) => out.push_str("site: none\n"),
    }
    out.push_str(&format!("reproduced: {}\n", r.reproduced));
    out
}

/// Shrinks the bundle's request while preserving the crash.
///
/// Greedy descent: compile the bundled program once, then repeatedly
/// try candidate shrinks of the request's `args` (drop array halves,
/// drop elements, zero or halve integers), accepting a candidate iff
/// its replay matches the original crash kind and site. The candidate
/// order within each round is shuffled by a corpusgen RNG seeded from
/// the program hash, so runs are deterministic per bundle.
///
/// # Errors
///
/// When the bundle does not reproduce in the first place (minimizing
/// against a non-crash would "shrink" to anything).
pub fn minimize(bundle: &CrashBundle) -> Result<Minimized, String> {
    const MAX_ATTEMPTS: u32 = 200;
    let cfg = serve_config_of(&bundle.config);
    let quarantine = quarantine_of(&bundle.config.quarantine);
    let ir = compile_program(&bundle.src, &cfg, &quarantine, cfg.optimize)
        .map_err(|e| format!("bundled program does not compile: {e}"))?;
    let base = run_once(&ir, &cfg, &bundle.request)?;
    if !reproduced(bundle, &base) {
        return Err(format!(
            "bundle does not reproduce (replay gives `{}`, bundle records `{}`); refusing to minimize",
            base.kind, bundle.kind
        ));
    }
    let mut best = crate::json::parse(bundle.request.trim())
        .map_err(|e| format!("bundle request is not JSON: {e}"))?;
    let seed = u64::from_str_radix(&bundle.program_hash, 16).unwrap_or(0);
    let mut rng = Rng::new(seed ^ 0x5eed);
    let mut attempts = 0u32;
    let mut improved = true;
    while improved && attempts < MAX_ATTEMPTS {
        improved = false;
        let mut cands = shrink_candidates(&best);
        shuffle(&mut cands, &mut rng);
        for cand in cands {
            if attempts >= MAX_ATTEMPTS {
                break;
            }
            attempts += 1;
            // Candidates are structurally smaller (fewer elements or a
            // smaller integer) even when the serialization ties in
            // length (`999` -> `499`), so only reject regressions.
            let line = cand.to_string();
            if line.len() > best.to_string().len() {
                continue;
            }
            if let Ok(o) = run_once(&ir, &cfg, &line) {
                if o.kind == base.kind && o.site == base.site {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
    }
    Ok(Minimized {
        request: best.to_string(),
        attempts,
    })
}

fn shuffle(items: &mut [Json], rng: &mut Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i + 1);
        items.swap(i, j);
    }
}

/// One round of candidate shrinks: every way of replacing one argument
/// with a structurally smaller value. The `fault`, `fuel`, and `call`
/// fields are never touched.
fn shrink_candidates(req: &Json) -> Vec<Json> {
    let mut out = Vec::new();
    let Json::Obj(fields) = req else {
        return out;
    };
    let Some(args_at) = fields.iter().position(|(k, _)| k == "args") else {
        return out;
    };
    let Json::Arr(args) = &fields[args_at].1 else {
        return out;
    };
    for (i, arg) in args.iter().enumerate() {
        for small in shrink_value(arg, 0) {
            let mut new_args = args.clone();
            new_args[i] = small;
            let mut new_fields = fields.clone();
            new_fields[args_at].1 = Json::Arr(new_args);
            out.push(Json::Obj(new_fields));
        }
    }
    out
}

/// Structurally smaller variants of one value. Depth-capped so hostile
/// nesting cannot blow the minimizer's stack.
fn shrink_value(v: &Json, depth: usize) -> Vec<Json> {
    const MAX_DEPTH: usize = 6;
    const MAX_ELEMENTWISE: usize = 16;
    if depth >= MAX_DEPTH {
        return Vec::new();
    }
    let mut out = Vec::new();
    match v {
        Json::Int(0) => {}
        Json::Int(n) => {
            out.push(Json::Int(0));
            if *n / 2 != 0 {
                out.push(Json::Int(n / 2));
            }
        }
        Json::Arr(items) if !items.is_empty() => {
            let mid = items.len() / 2;
            if mid > 0 {
                out.push(Json::Arr(items[mid..].to_vec()));
                out.push(Json::Arr(items[..mid].to_vec()));
            } else {
                out.push(Json::Arr(Vec::new()));
            }
            if items.len() <= MAX_ELEMENTWISE {
                for i in 0..items.len() {
                    let mut fewer = items.clone();
                    fewer.remove(i);
                    out.push(Json::Arr(fewer));
                }
                for (i, item) in items.iter().enumerate() {
                    for small in shrink_value(item, depth + 1) {
                        let mut replaced = items.clone();
                        replaced[i] = small;
                        out.push(Json::Arr(replaced));
                    }
                }
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleConfig;
    use crate::watch::fnv64;

    const SRC: &str = "letrec mk n = if n = 0 then nil else cons n (mk (n - 1));\n\
                       sum l = if (null l) then 0 else (car l) + (sum (cdr l))\n\
                       in sum (mk 4)";

    fn bundle_for(request: &str, kind: &str, checked: bool) -> CrashBundle {
        let cfg = ServeConfig::default();
        CrashBundle {
            version: 1,
            kind: kind.to_owned(),
            signature: "test".to_owned(),
            epoch: 1,
            program_hash: format!("{:016x}", fnv64(SRC.as_bytes())),
            src: SRC.to_owned(),
            request: request.to_owned(),
            site: None,
            config: BundleConfig::capture(&ServeConfig { checked, ..cfg }, Vec::new()),
            steps: 0,
        }
    }

    #[test]
    fn replays_a_panic_deterministically() {
        let b = bundle_for(
            "{\"op\":\"eval\",\"id\":1,\"fault\":{\"panic_at_alloc\":2}}",
            "worker_panicked",
            false,
        );
        let r1 = replay(&b).expect("replay");
        let r2 = replay(&b).expect("replay again");
        assert!(r1.reproduced, "kind {} msg {}", r1.kind, r1.message);
        assert_eq!(r1, r2, "two replays must agree exactly");
        assert_eq!(render_report(&b, &r1), render_report(&b, &r2));
    }

    #[test]
    fn non_reproducing_bundle_is_flagged_not_errored() {
        // The request succeeds, but the bundle claims a panic: replay
        // runs fine and reports reproduced=false.
        let b = bundle_for("{\"op\":\"eval\",\"id\":1}", "worker_panicked", false);
        let r = replay(&b).expect("replay");
        assert_eq!(r.kind, "ok");
        assert!(!r.reproduced);
        assert_eq!(r.message, "10");
    }

    #[test]
    fn minimize_shrinks_while_preserving_the_crash() {
        // `mk n` allocates n cons cells, and panic_at_alloc=1 fires on
        // the second one, so every n >= 2 keeps crashing — the
        // minimizer should halve the argument down to a small value.
        let b = bundle_for(
            "{\"op\":\"eval\",\"id\":1,\"call\":\"mk\",\
             \"args\":[999],\"fault\":{\"panic_at_alloc\":1}}",
            "worker_panicked",
            false,
        );
        let m = minimize(&b).expect("minimize");
        assert!(
            m.request.len() < b.request.len(),
            "shrunk: {} -> {}",
            b.request,
            m.request
        );
        // The minimized request still reproduces.
        let mut b2 = b.clone();
        b2.request = m.request.clone();
        assert!(replay(&b2).expect("replay minimized").reproduced);
        // And minimization is deterministic.
        let m2 = minimize(&b).expect("minimize again");
        assert_eq!(m, m2);
    }

    #[test]
    fn minimize_refuses_non_reproducing_bundles() {
        let b = bundle_for("{\"op\":\"eval\",\"id\":1}", "worker_panicked", false);
        let err = minimize(&b).unwrap_err();
        assert!(err.contains("does not reproduce"), "{err}");
    }
}
