//! Minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! This workspace builds in environments with no access to a crate
//! registry, so the real `criterion` cannot be vendored. The shim keeps
//! the same `criterion_group!`/`criterion_main!` entry points and the
//! `benchmark_group`/`bench_function`/`bench_with_input`/`iter` surface
//! the workspace's benches use, but measures with a simple fixed scheme:
//! a short warm-up, then a fixed number of timed iterations, reporting
//! the median per-iteration time on stdout. No statistics, plots, or
//! baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Measures a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), f);
    }
}

/// A named set of measurements sharing a group prefix.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    /// Measures one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}"),
            param: format!("{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the closure: 3 warm-up runs, then 16 timed runs.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        for _ in 0..16 {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {label}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Declares a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
