//! Regeneration of every table and figure in the paper's evaluation
//! (its Appendix A plus the introduction's claims), and of the runtime
//! tables our instrumented substrate adds on top. See DESIGN.md §4 for
//! the experiment index; EXPERIMENTS.md records a captured run.

use crate::runner::{
    build, build_ps, build_repeated_block_variant, build_repeated_stack_variant, build_rev,
    build_stack_variant, call_stats, pressured_config, repeated_consume_source, run_stats,
    sum_literal_source,
};
use nml_escape::{analyze_source, global_escape, local_escape, transfer_verdict, Be, Engine};
use nml_escape_analysis::corpus;
use nml_opt::lower_program;
use nml_runtime::{dynamic_escape, Interp, InterpConfig};
use nml_syntax::{parse_program, Symbol};
use nml_types::{infer_and_monomorphize, infer_program, Ty};
use std::fmt::Write;

/// T-A1: the global escape results of Appendix A.1, with the paper's
/// expected values alongside the computed ones.
pub fn table_a1() -> String {
    let expected: &[(&str, usize, Be)] = &[
        ("append", 1, Be::escaping(0)),
        ("append", 2, Be::escaping(1)),
        ("split", 1, Be::bottom()),
        ("split", 2, Be::escaping(0)),
        ("split", 3, Be::escaping(1)),
        ("split", 4, Be::escaping(1)),
        ("ps", 1, Be::escaping(0)),
    ];
    let a = analyze_source(corpus::PARTITION_SORT.source).expect("analysis");
    let mut out = String::new();
    let _ = writeln!(out, "T-A1: global escape test (paper Appendix A.1)");
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>4} {:>8} {:>8} {:>6}",
        "function", "param", "s_i", "paper", "ours", "match"
    );
    for (f, i, want) in expected {
        let p = &a.summary(f).expect("summary").params[*i - 1];
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>4} {:>8} {:>8} {:>6}",
            f,
            i,
            p.spines,
            want.to_string(),
            p.verdict.to_string(),
            if p.verdict == *want { "yes" } else { "NO" }
        );
    }
    out
}

/// F-A1: Kleene iteration effort per function (the appendix shows
/// `append⁽⁰⁾..append⁽²⁾` etc. — two growing steps then stability). Each
/// function is measured with a fresh engine running only its own
/// parameter-1 test, so the counts are per-query.
pub fn table_f1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "F-A1: fixpoint iteration effort (fresh engine per query)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>14} {:>12}",
        "function", "passes", "cache updates", "memo entries"
    );
    let p = parse_program(corpus::PARTITION_SORT.source).expect("parse");
    let info = infer_program(&p).expect("infer");
    for f in corpus::PARTITION_SORT.functions {
        let name = Symbol::intern(f);
        let mut en = Engine::new(&p, &info);
        let _ = global_escape(&mut en, name).expect("test");
        let updates: u32 = en.stats.updates_per_binding.values().sum();
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>14} {:>12}",
            f, en.stats.passes, updates, en.stats.memo_entries
        );
    }

    // The appendix's Kleene traces, as the per-pass value of G(f, 1):
    // e.g. append starts at bottom and grows to its fixpoint.
    let _ = writeln!(out, "per-pass trace of G(f, 1) (recursive growth happens inside a pass\n via the memo bootstrap; the trace shows the per-pass query value):");
    for f in corpus::PARTITION_SORT.functions {
        let name = Symbol::intern(f);
        let mut en = Engine::new(&p, &info);
        let sig = info.sig(name).expect("sig").clone();
        let (params, _) = sig.uncurry();
        let args: Vec<nml_escape::AbsVal> = params
            .iter()
            .enumerate()
            .map(|(j, ty)| {
                let be = if j == 0 {
                    Be::escaping(ty.spines())
                } else {
                    Be::bottom()
                };
                nml_escape::worst_value(ty, be)
            })
            .collect();
        let (_, trace) = en
            .run_traced(|en| {
                let fv = en.top_value(name);
                en.apply_n(&fv, &args).be
            })
            .expect("trace");
        let rendered: Vec<String> = trace.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "  {f:<8} {}", rendered.join(" -> "));
    }
    out
}

/// T-A2: sharing conclusions of Appendix A.2.
pub fn table_a2() -> String {
    let a = analyze_source(corpus::PARTITION_SORT.source).expect("analysis");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "T-A2: sharing from escape information (Appendix A.2, Thm 2)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>10} {:>16} {:>8}",
        "function", "d_result", "max esc_i", "unshared spines", "paper"
    );
    for (f, paper) in [("ps", 1u32), ("split", 1u32)] {
        let s = a.summary(f).expect("summary");
        let max_esc = s
            .params
            .iter()
            .map(|p| p.escaping_spines())
            .max()
            .unwrap_or(0);
        let unshared = nml_escape::unshared_from_summary(s);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>10} {:>16} {:>8}",
            f,
            s.result_ty.spines(),
            max_esc,
            unshared,
            paper
        );
    }
    out
}

/// T-I1: the three properties of the introduction example
/// `map pair [[1,2],[3,4],[5,6]]`.
pub fn table_i1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "T-I1: introduction example (map pair [[1,2],[3,4],[5,6]])"
    );
    let parsed = parse_program(corpus::MAP_PAIR.source).expect("parse");
    let mono = infer_and_monomorphize(&parsed).expect("mono");
    let mut en = Engine::new(&mono.program, &mono.info);

    // Property 1: pair's parameter top spine does not escape.
    let pair_name = mono
        .program
        .bindings
        .iter()
        .map(|b| b.name)
        .find(|n| n.as_str().starts_with("pair"))
        .expect("pair instance");
    let pair = global_escape(&mut en, pair_name).expect("pair");
    let _ = writeln!(
        out,
        "1. G(pair, 1) = {} -> top spine retained: {}  (paper: does not escape)",
        pair.param(0).verdict,
        pair.param(0).retained_spines() >= 1
    );

    // Property 2: map's list parameter top spine does not escape.
    let map_name = mono
        .program
        .bindings
        .iter()
        .map(|b| b.name)
        .find(|n| n.as_str().starts_with("map"))
        .expect("map instance");
    let map = global_escape(&mut en, map_name).expect("map");
    let _ = writeln!(
        out,
        "2. G(map, 2)  = {} -> top spine retained: {}  (paper: spine stays, elements via f)",
        map.param(1).verdict,
        map.param(1).retained_spines() >= 1
    );

    // Property 3: locally, the top two spines of the literal stay.
    let local = local_escape(&mut en, &mono.program.body).expect("local");
    let _ = writeln!(
        out,
        "3. L(arg 2)   = {} -> top {} of {} spines retained  (paper: top two)",
        local.verdicts[1],
        local.retained_spines(1),
        local.spines[1]
    );
    out
}

/// T-P1: polymorphic invariance — retained top spines across directly
/// analyzed monotype instances.
pub fn table_p1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "T-P1: polymorphic invariance (Theorem 1)");
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:>4} {:>8} {:>9} {:>14}",
        "function", "instance", "s_i", "G", "retained", "transfer match"
    );
    let append_def = "append x y = if (null x) then y
                                   else cons (car x) (append (cdr x) y)";
    let cases = [
        (
            "append",
            format!("letrec {append_def} in append [1] [2]"),
            "append__i",
        ),
        (
            "append",
            format!("letrec {append_def} in append [[1]] [[2]]"),
            "append__iL",
        ),
        (
            "append",
            format!("letrec {append_def} in append [[[1]]] [[[2]]]"),
            "append__iLL",
        ),
    ];
    let mut simplest: Option<(Be, u32)> = None;
    for (f, src, inst) in &cases {
        let p = parse_program(src).expect("parse");
        let m = infer_and_monomorphize(&p).expect("mono");
        let mut en = Engine::new(&m.program, &m.info);
        let s = global_escape(&mut en, Symbol::intern(inst)).expect("test");
        let p0 = s.param(0);
        let transfer_ok = match simplest {
            None => {
                simplest = Some((p0.verdict, p0.spines));
                true
            }
            Some((v0, s0)) => transfer_verdict(v0, s0, p0.spines) == p0.verdict,
        };
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>4} {:>8} {:>9} {:>14}",
            f,
            inst,
            p0.spines,
            p0.verdict.to_string(),
            p0.retained_spines(),
            if transfer_ok { "yes" } else { "NO" }
        );
    }
    out
}

/// T-R1: stack allocation — heap vs stack allocations and reclamation
/// work for `sum [0..n]`.
pub fn table_r1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "T-R1: stack allocation of non-escaping literal arguments (sum [0..n])"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "n", "heap(base)", "heap(stack)", "stack allocs", "stack freed", "reclaim(base)"
    );
    for n in [64usize, 256, 1024, 4096] {
        let base = build(&sum_literal_source(n));
        let base_stats = run_stats(&base.ir, pressured_config(256));
        let opt = build_stack_variant(n);
        let opt_stats = run_stats(&opt.ir, pressured_config(256));
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>14}",
            n,
            base_stats.heap_allocs,
            opt_stats.heap_allocs,
            opt_stats.stack_allocs,
            opt_stats.stack_freed,
            base_stats.reclamation_work()
        );
    }
    let _ = writeln!(
        out,
        "(stack-mode reclamation work is 0 by the paper's model: frame pops are free)"
    );
    out
}

/// T-R2: in-place reuse — allocations eliminated by `DCONS` for `rev`
/// (quadratic) and `ps`.
pub fn table_r2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "T-R2: in-place reuse via DCONS (call-only allocation counts)"
    );
    let _ = writeln!(
        out,
        "{:<6} {:>6} {:>14} {:>14} {:>14}",
        "prog", "n", "allocs (base)", "allocs (reuse)", "dcons reuses"
    );
    let (rev_b, rev, rev_r) = build_rev();
    for n in [32usize, 128, 512] {
        let base = call_stats(&rev_b.ir, rev, n, InterpConfig::default());
        let opt = call_stats(&rev_b.ir, rev_r, n, InterpConfig::default());
        let _ = writeln!(
            out,
            "{:<6} {:>6} {:>14} {:>14} {:>14}",
            "rev", n, base.heap_allocs, opt.heap_allocs, opt.dcons_reuses
        );
    }
    let (ps_b, ps, ps_r) = build_ps();
    for n in [32usize, 128, 512] {
        let base = call_stats(&ps_b.ir, ps, n, InterpConfig::default());
        let opt = call_stats(&ps_b.ir, ps_r, n, InterpConfig::default());
        let _ = writeln!(
            out,
            "{:<6} {:>6} {:>14} {:>14} {:>14}",
            "ps", n, base.heap_allocs, opt.heap_allocs, opt.dcons_reuses
        );
    }
    out
}

/// T-R3: block allocation/reclamation for `go k = Σ sum (create_list n)`
/// — repeated allocation pressure, so dead input spines must really be
/// reclaimed: by GC sweeps in the baseline, by one splice per iteration
/// in block mode.
pub fn table_r3() -> String {
    let mut out = String::new();
    let k = 16usize;
    let _ = writeln!(
        out,
        "T-R3: block reclamation (sum (create_list n), {k} iterations, gc threshold 64)"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "n", "swept(b)", "swept(blk)", "blk cells", "splices", "gc(b)", "gc(blk)"
    );
    for n in [128usize, 512, 2048] {
        let base = build(&repeated_consume_source(n, k));
        let base_stats = run_stats(&base.ir, pressured_config(64));
        let blk = build_repeated_block_variant(n, k);
        let blk_stats = run_stats(&blk.ir, pressured_config(64));
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            n,
            base_stats.gc_swept,
            blk_stats.gc_swept,
            blk_stats.block_freed,
            blk_stats.block_frees,
            base_stats.gc_runs,
            blk_stats.gc_runs
        );
    }
    out
}

/// F-R1: series — reclamation work vs input size under repeated
/// pressure, baseline vs each optimization (the paper's qualitative
/// "reduction of run-time storage reclamation overhead").
pub fn table_fr1() -> String {
    let mut out = String::new();
    let k = 16usize;
    let _ = writeln!(
        out,
        "F-R1: reclamation work vs n ({k} iterations, gc threshold 64)"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>16} {:>16} {:>16}",
        "n", "baseline", "stack-alloc", "block"
    );
    for n in [64usize, 256, 1024] {
        let base = run_stats(
            &build(&repeated_consume_source(n, k)).ir,
            pressured_config(64),
        );
        // Stack allocation applies to the literal-argument form of the
        // same workload.
        let stack = run_stats(&build_repeated_stack_variant(n, k).ir, pressured_config(64));
        let blk = run_stats(&build_repeated_block_variant(n, k).ir, pressured_config(64));
        let _ = writeln!(
            out,
            "{:>6} {:>16} {:>16} {:>16}",
            n,
            base.reclamation_work(),
            stack.reclamation_work(),
            blk.reclamation_work()
        );
    }
    let _ = writeln!(
        out,
        "(stack and block modes keep live size flat: few or no GCs; block pays 1 splice/iter)"
    );
    out
}

/// T-S1: soundness sweep — static verdict vs measured dynamic escape for
/// every first-order list parameter in the corpus.
pub fn table_s1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "T-S1: dynamic (exact) vs abstract escape, whole corpus"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>5} {:>8} {:>8} {:>6}",
        "workload", "function", "param", "static", "dynamic", "sound"
    );
    let mut rows = 0;
    for w in corpus::ALL {
        let a = analyze_source(w.source).expect("analysis");
        let ir = lower_program(&a.program, &a.info);
        for f in w.functions {
            let Some(s) = a.summary(f) else { continue };
            if s.param_tys.iter().any(|t| matches!(t, Ty::Fun(..))) {
                continue;
            }
            for (i, pty) in s.param_tys.iter().enumerate() {
                let spines = pty.spines();
                if spines == 0 {
                    continue;
                }
                let mut best_dynamic = 0u32;
                let mut measured = false;
                for seed in 1..4u64 {
                    let mut interp = Interp::new(&ir).expect("interp");
                    let mut args = Vec::new();
                    for (j, t) in s.param_tys.iter().enumerate() {
                        args.push(gen_value(&mut interp, t, seed * 131 + j as u64));
                    }
                    match dynamic_escape(&mut interp, Symbol::intern(f), args, i, spines) {
                        Ok(d) => {
                            measured = true;
                            best_dynamic = best_dynamic.max(d.escaping_spines());
                        }
                        Err(_) => continue, // partial function on this input
                    }
                }
                if !measured {
                    continue;
                }
                let static_k = s.param(i).escaping_spines();
                rows += 1;
                let _ = writeln!(
                    out,
                    "{:<16} {:<10} {:>5} {:>8} {:>8} {:>6}",
                    w.name,
                    f,
                    i + 1,
                    s.param(i).verdict.to_string(),
                    best_dynamic,
                    if best_dynamic <= static_k {
                        "yes"
                    } else {
                        "NO"
                    }
                );
            }
        }
    }
    let _ = writeln!(out, "({rows} parameter measurements, all must be sound)");
    out
}

fn gen_value<'p>(interp: &mut Interp<'p>, ty: &Ty, seed: u64) -> nml_runtime::Value<'p> {
    match ty {
        Ty::List(elem) => {
            let len = (seed % 4) as usize + 2;
            let items: Vec<nml_runtime::Value<'p>> = (0..len)
                .map(|i| gen_value(interp, elem, seed.wrapping_mul(29).wrapping_add(i as u64)))
                .collect();
            interp.make_list(items)
        }
        Ty::Bool => nml_runtime::Value::Bool(seed.is_multiple_of(2)),
        _ => nml_runtime::Value::Int((seed % 23) as i64 - 11),
    }
}

/// B-0: analysis cost summary (non-criterion quick view; criterion
/// benches give precise timings).
pub fn table_b0() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "B-0: analysis effort per corpus program");
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>7} {:>13} {:>10}",
        "workload", "functions", "passes", "memo entries", "widenings"
    );
    for w in corpus::ALL {
        let a = analyze_source(w.source).expect("analysis");
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>7} {:>13} {:>10}",
            w.name,
            a.summaries.len(),
            a.stats.passes,
            a.stats.memo_entries,
            a.stats.widenings
        );
    }
    out
}

/// AB-1: widening ablation. The engine's only deviation from the paper's
/// plain Kleene iteration is the depth-widening safeguard; this sweep
/// shows it is inert at realistic thresholds (no widenings, identical
/// verdicts) and what it costs when forced low.
pub fn table_ab1() -> String {
    use nml_escape::{analyze_source_with, EngineConfig, PolyMode};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "AB-1: widening-threshold ablation (higher_order corpus)"
    );
    let _ = writeln!(
        out,
        "{:>11} {:>7} {:>13} {:>10} {:>22}",
        "widen_depth", "passes", "memo entries", "widenings", "tail verdict (param 1)"
    );
    let src = corpus::HIGHER_ORDER.source;
    for depth in [1u32, 2, 4, 8, 24] {
        let a = analyze_source_with(
            src,
            PolyMode::SimplestInstance,
            EngineConfig {
                widen_depth: depth,
                ..Default::default()
            },
        )
        .expect("analysis");
        let tail = a.summary("tail").expect("tail").param(0).verdict;
        let _ = writeln!(
            out,
            "{:>11} {:>7} {:>13} {:>10} {:>22}",
            depth,
            a.stats.passes,
            a.stats.memo_entries,
            a.stats.widenings,
            tail.to_string()
        );
    }
    out
}

/// AB-2: polymorphism-handling ablation — the paper's route 1 (simplest
/// instance + Theorem 1 transfer) vs route 2 (full monomorphization):
/// analysis effort and function count.
pub fn table_ab2() -> String {
    use nml_escape::{analyze_source_with, EngineConfig, PolyMode};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "AB-2: simplest-instance (route 1) vs monomorphization (route 2)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "fns(r1)", "fns(r2)", "passes(r1)", "passes(r2)", "memo(r1)", "memo(r2)"
    );
    for w in [
        corpus::PARTITION_SORT,
        corpus::MAP_PAIR,
        corpus::CONCAT,
        corpus::MERGE_SORT,
        corpus::HIGHER_ORDER,
    ] {
        let r1 = analyze_source_with(
            w.source,
            PolyMode::SimplestInstance,
            EngineConfig::default(),
        )
        .expect("route 1");
        let r2 = analyze_source_with(w.source, PolyMode::Monomorphize, EngineConfig::default())
            .expect("route 2");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            w.name,
            r1.summaries.len(),
            r2.summaries.len(),
            r1.stats.passes,
            r2.stats.passes,
            r1.stats.memo_entries,
            r2.stats.memo_entries
        );
    }
    let _ = writeln!(
        out,
        "(route 1 analyzes one copy per function; route 2 one per demanded instance —\n the paper's polymorphic-invariance theorem is what makes route 1 sufficient)"
    );
    out
}

/// Every table, concatenated (the `tables --all` output captured in
/// EXPERIMENTS.md).
pub fn all_tables() -> String {
    [
        table_a1(),
        table_f1(),
        table_a2(),
        table_i1(),
        table_p1(),
        table_r1(),
        table_r2(),
        table_r3(),
        table_fr1(),
        table_s1(),
        table_b0(),
        table_ab1(),
        table_ab2(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_table_all_match() {
        let t = table_a1();
        assert!(!t.contains(" NO"), "paper mismatch:\n{t}");
        assert_eq!(t.matches("yes").count(), 7);
    }

    #[test]
    fn a2_table_values() {
        let t = table_a2();
        assert!(t.contains("ps"), "{t}");
        assert!(!t.contains(" NO"), "{t}");
    }

    #[test]
    fn i1_table_properties_hold() {
        let t = table_i1();
        assert!(t.contains("top spine retained: true"), "{t}");
        assert!(t.contains("top 2 of 2 spines retained"), "{t}");
    }

    #[test]
    fn p1_table_transfer_matches() {
        let t = table_p1();
        assert!(!t.contains(" NO"), "{t}");
    }

    #[test]
    fn s1_table_is_sound() {
        let t = table_s1();
        assert!(!t.contains(" NO"), "unsound row:\n{t}");
        assert!(t.contains("all must be sound"));
    }

    #[test]
    fn r2_table_shows_zero_alloc_reuse_for_rev() {
        let t = table_r2();
        // rev's reuse rows must show 0 allocations.
        for line in t.lines().filter(|l| l.starts_with("rev ")) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[3], "0", "reuse allocations nonzero: {line}");
        }
    }
}
