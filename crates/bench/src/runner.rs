//! Shared machinery for the table generators and criterion benches:
//! program builders, optimized-variant construction, and measured runs.

use nml_escape::{analyze_source, Analysis};
use nml_escape_analysis::corpus;
use nml_opt::{annotate_stack, block_call, lower_program, reuse_variant, IrProgram, ReuseOptions};
use nml_runtime::{HeapConfig, Interp, InterpConfig, RuntimeStats};
use nml_syntax::Symbol;

/// A program together with its analysis and lowered IR.
pub struct Built {
    /// The escape analysis (owns program + types).
    pub analysis: Analysis,
    /// Lowered IR (possibly already extended with variants).
    pub ir: IrProgram,
}

/// Analyzes and lowers `src`.
///
/// # Panics
///
/// Panics on any front-end failure — benchmark sources are fixed.
pub fn build(src: &str) -> Built {
    let analysis = analyze_source(src).expect("benchmark source analyzes");
    let ir = lower_program(&analysis.program, &analysis.info);
    Built { analysis, ir }
}

/// The naive-reverse program with `rev` and its reuse variant `rev_r`.
///
/// # Panics
///
/// Panics if the transformation is rejected (it is licensed by the
/// analysis for this program).
pub fn build_rev() -> (Built, Symbol, Symbol) {
    let mut b = build(corpus::REV_NAIVE.source);
    let append_r = reuse_variant(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )
    .expect("append_r");
    let rev_r = reuse_variant(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("rev"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )
    .expect("rev_r");
    (b, Symbol::intern("rev"), rev_r)
}

/// The partition-sort program with `ps` and its reuse variant `ps_r`
/// (the paper's `PS''`).
///
/// # Panics
///
/// See [`build_rev`].
pub fn build_ps() -> (Built, Symbol, Symbol) {
    let mut b = build(corpus::PARTITION_SORT.source);
    let append_r = reuse_variant(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )
    .expect("append_r");
    let ps_r = reuse_variant(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("ps"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )
    .expect("ps_r");
    (b, Symbol::intern("ps"), ps_r)
}

/// `sum` over a literal list of length `n`, as source text (the stack-
/// allocation workload: the literal is constructed at the call site).
pub fn sum_literal_source(n: usize) -> String {
    format!(
        "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
         in sum {}",
        corpus::int_list_literal(n)
    )
}

/// `sum (create_list n)` as source text (the block-allocation workload:
/// the list is produced inside a callee).
pub fn create_consume_source(n: usize) -> String {
    format!(
        "letrec
           sum l = if (null l) then 0 else car l + sum (cdr l);
           create_list n = if n = 0 then nil else cons n (create_list (n - 1))
         in sum (create_list {n})"
    )
}

/// `go k`: sums `k` freshly created lists of length `n` — repeated
/// allocation pressure, so dead inputs must actually be reclaimed (the
/// regime where stack/block reclamation pays; a single-shot run dies
/// before its garbage needs collecting).
pub fn repeated_consume_source(n: usize, k: usize) -> String {
    format!(
        "letrec
           sum l = if (null l) then 0 else car l + sum (cdr l);
           create_list n = if n = 0 then nil else cons n (create_list (n - 1));
           go k acc = if k = 0 then acc else go (k - 1) (acc + sum (create_list {n}))
         in go {k} 0"
    )
}

/// The literal-argument analogue of [`repeated_consume_source`] (for the
/// stack-allocation pass, which needs construction at the call site).
pub fn repeated_literal_source(n: usize, k: usize) -> String {
    format!(
        "letrec
           sum l = if (null l) then 0 else car l + sum (cdr l);
           go k acc = if k = 0 then acc else go (k - 1) (acc + sum {lit})
         in go {k} 0",
        lit = corpus::int_list_literal(n)
    )
}

/// Builds [`repeated_consume_source`] with the block transformation
/// applied.
///
/// # Panics
///
/// Panics if the transformation is rejected.
pub fn build_repeated_block_variant(n: usize, k: usize) -> Built {
    let mut b = build(&repeated_consume_source(n, k));
    block_call(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("sum"),
        Symbol::intern("create_list"),
    )
    .expect("block transform licensed");
    b
}

/// Builds [`repeated_literal_source`] with stack allocation applied.
pub fn build_repeated_stack_variant(n: usize, k: usize) -> Built {
    let mut b = build(&repeated_literal_source(n, k));
    annotate_stack(&mut b.ir, &b.analysis);
    b
}

/// Builds [`create_consume_source`] with the block transformation
/// applied.
///
/// # Panics
///
/// Panics if the transformation is rejected.
pub fn build_block_variant(n: usize) -> Built {
    let mut b = build(&create_consume_source(n));
    block_call(
        &mut b.ir,
        &b.analysis,
        Symbol::intern("sum"),
        Symbol::intern("create_list"),
    )
    .expect("block transform licensed");
    b
}

/// Builds [`sum_literal_source`] with stack allocation applied.
pub fn build_stack_variant(n: usize) -> Built {
    let mut b = build(&sum_literal_source(n));
    annotate_stack(&mut b.ir, &b.analysis);
    b
}

/// An interpreter configuration that keeps GC active at benchmark sizes.
pub fn pressured_config(threshold: usize) -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: threshold,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        ..Default::default()
    }
}

/// Calls `func` on a fresh interpreter with a `0..n` integer list input
/// and returns the call-only statistics (input construction subtracted
/// from heap allocation counts).
///
/// # Panics
///
/// Panics on runtime errors — benchmark programs are total on these
/// inputs.
pub fn call_stats(ir: &IrProgram, func: Symbol, n: usize, config: InterpConfig) -> RuntimeStats {
    let mut interp = Interp::with_config(ir, config).expect("interp");
    let input: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 65_536).collect();
    let l = interp.make_int_list(&input);
    let before = interp.heap.stats;
    let result = interp.call(func, vec![l]).expect("benchmark call");
    // Force the result to stay alive through the call (no accidental
    // collection of the output).
    std::hint::black_box(&result);
    let mut stats = interp.heap.stats;
    stats.heap_allocs -= before.heap_allocs;
    stats
}

/// Runs a whole program body and returns its statistics.
///
/// # Panics
///
/// Panics on runtime errors.
pub fn run_stats(ir: &IrProgram, config: InterpConfig) -> RuntimeStats {
    let mut interp = Interp::with_config(ir, config).expect("interp");
    let v = interp.run().expect("benchmark run");
    std::hint::black_box(&v);
    interp.heap.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rev_variants_build_and_run() {
        let (b, rev, rev_r) = build_rev();
        let base = call_stats(&b.ir, rev, 40, InterpConfig::default());
        let opt = call_stats(&b.ir, rev_r, 40, InterpConfig::default());
        assert!(
            base.heap_allocs > 700,
            "quadratic baseline: {}",
            base.heap_allocs
        );
        assert_eq!(opt.heap_allocs, 0, "reuse allocates nothing");
        assert!(opt.dcons_reuses > 700);
    }

    #[test]
    fn ps_variants_build_and_run() {
        let (b, ps, ps_r) = build_ps();
        let base = call_stats(&b.ir, ps, 50, InterpConfig::default());
        let opt = call_stats(&b.ir, ps_r, 50, InterpConfig::default());
        assert!(opt.dcons_reuses > 0);
        assert!(opt.heap_allocs < base.heap_allocs);
    }

    #[test]
    fn stack_variant_eliminates_heap_allocs() {
        let b = build_stack_variant(32);
        let stats = run_stats(&b.ir, InterpConfig::default());
        assert_eq!(stats.heap_allocs, 0);
        assert_eq!(stats.stack_allocs, 32);
    }

    #[test]
    fn block_variant_splices_once() {
        let b = build_block_variant(64);
        let stats = run_stats(&b.ir, pressured_config(16));
        assert_eq!(stats.block_frees, 1);
        assert_eq!(stats.block_freed, 64);
        assert_eq!(stats.gc_swept, 0);
    }
}
