//! Regenerates the paper's tables and figures.
//!
//! ```text
//! tables --all            every table
//! tables --table a1       one table (a1, f1, a2, i1, p1, r1, r2, r3, fr1, s1, b0, ab1, ab2)
//! ```

use nml_bench::tables;

fn main() {
    // Generated programs contain deep literal lists; the recursive
    // front-end passes need more than the default main-thread stack.
    let child = std::thread::Builder::new()
        .name("tables".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(run)
        .expect("spawn table thread");
    child.join().expect("table generation succeeded");
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pick = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    match pick {
        None => print!("{}", tables::all_tables()),
        Some("a1") => print!("{}", tables::table_a1()),
        Some("f1") => print!("{}", tables::table_f1()),
        Some("a2") => print!("{}", tables::table_a2()),
        Some("i1") => print!("{}", tables::table_i1()),
        Some("p1") => print!("{}", tables::table_p1()),
        Some("r1") => print!("{}", tables::table_r1()),
        Some("r2") => print!("{}", tables::table_r2()),
        Some("r3") => print!("{}", tables::table_r3()),
        Some("fr1") => print!("{}", tables::table_fr1()),
        Some("s1") => print!("{}", tables::table_s1()),
        Some("b0") => print!("{}", tables::table_b0()),
        Some("ab1") => print!("{}", tables::table_ab1()),
        Some("ab2") => print!("{}", tables::table_ab2()),
        Some(other) => {
            eprintln!(
                "unknown table `{other}` (a1, f1, a2, i1, p1, r1, r2, r3, fr1, s1, b0, ab1, ab2)"
            );
            std::process::exit(1);
        }
    }
}
