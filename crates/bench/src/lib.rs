//! # nml-bench
//!
//! The benchmark harness for the reproduction of *Escape Analysis on
//! Lists* (Park & Goldberg, PLDI 1992): program builders, measured runs,
//! and regeneration of every table/figure in the paper's evaluation
//! (Appendix A and the introduction's claims), plus the runtime tables
//! our instrumented substrate adds.
//!
//! - `cargo run -p nml-bench --bin tables -- --all` regenerates the
//!   tables (captured in the repository's EXPERIMENTS.md);
//! - `cargo bench -p nml-bench` runs the criterion timing benches
//!   (analysis cost, optimized-vs-baseline interpretation, GC work).

#![warn(missing_docs)]

pub mod runner;
pub mod tables;
