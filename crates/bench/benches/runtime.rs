//! T-R2 as wall-clock: baseline vs DCONS-reuse interpretation of the
//! paper's transformed functions (`REV'`, `PS''`), and T-R1 as
//! wall-clock: heap vs stack allocation for literal arguments.
//!
//! Absolute times are ours, not the paper's (they had no implementation);
//! the *shape* — reuse wins, and wins more as n grows — is the claim
//! under test.
//!
//! B-7 (`bench_engine_comparison`): the bytecode VM against the
//! tree-walking interpreter on scaled-up corpus workloads. Medians land
//! in `BENCH_runtime.json` at the workspace root, and the run fails if
//! the VM's geometric-mean speedup drops below 3x — the engine's reason
//! to exist, enforced on every bench run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nml_bench::runner::{
    build, build_ps, build_rev, build_stack_variant, create_consume_source,
    repeated_consume_source, sum_literal_source,
};
use nml_runtime::{HeapConfig, Interp, InterpConfig, RuntimeStats, Value, Vm};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_rev_vs_rev_r(c: &mut Criterion) {
    let (b, rev, rev_r) = build_rev();
    let mut g = c.benchmark_group("reverse");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).collect();
        for (label, func) in [("baseline", rev), ("dcons", rev_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_ps_vs_ps_r(c: &mut Criterion) {
    let (b, ps, ps_r) = build_ps();
    let mut g = c.benchmark_group("partition_sort");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 1000).collect();
        for (label, func) in [("baseline", ps), ("dcons", ps_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_stack_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_literal");
    for n in [256usize, 1024] {
        let base = build(&sum_literal_source(n));
        let stacked = build_stack_variant(n);
        g.bench_with_input(BenchmarkId::new("heap", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&base.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
        g.bench_with_input(BenchmarkId::new("stack", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&stacked.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
    }
    g.finish();
}

/// Medians a closure over 3 warm-up + 9 timed runs.
fn median_of<F: FnMut()>(mut f: F) -> Duration {
    for _ in 0..3 {
        f();
    }
    // Minimum, not median: scheduler preemption and frequency dips are
    // strictly additive noise, so the fastest observation is the best
    // estimate of the undisturbed runtime — and the only one stable
    // enough for cross-engine ratios on a shared box.
    (0..9)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("nonempty samples")
}

/// The corpus workloads scaled to interpretation-dominated sizes. Every
/// main body reduces to an integer so the engines' results can be
/// compared directly, without heap traversal.
fn engine_workloads() -> Vec<(&'static str, String)> {
    vec![
        (
            "naive_reverse",
            "letrec
               append x y = if (null x) then y else cons (car x) (append (cdr x) y);
               rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
               mklist n = if n = 0 then nil else cons n (mklist (n - 1));
               sum l = if (null l) then 0 else (car l) + sum (cdr l)
             in sum (rev (mklist 120))"
                .to_owned(),
        ),
        (
            "partition_sort",
            "letrec
               append x y = if (null x) then y else cons (car x) (append (cdr x) y);
               split p x l h =
                 if (null x) then (cons l (cons h nil))
                 else if (car x) < p
                      then split p (cdr x) (cons (car x) l) h
                      else split p (cdr x) l (cons (car x) h);
               ps x = if (null x) then nil
                      else append (ps (car (split (car x) (cdr x) nil nil)))
                                  (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))));
               mklist n = if n = 0 then nil else cons n (mklist (n - 1));
               sum l = if (null l) then 0 else (car l) + sum (cdr l)
             in sum (ps (mklist 90))"
                .to_owned(),
        ),
        (
            "map_pair",
            "letrec
               pair x = cons (car x) (cons (car (cdr x)) nil);
               map f l = if (null l) then nil else cons (f (car l)) (map f (cdr l));
               mkpairs n = if n = 0 then nil
                           else cons (cons n (cons (n + 1) nil)) (mkpairs (n - 1));
               sumheads l = if (null l) then 0 else (car (car l)) + sumheads (cdr l)
             in sumheads (map pair (mkpairs 600))"
                .to_owned(),
        ),
        ("create_consume", create_consume_source(3000)),
        ("repeated_consume", repeated_consume_source(64, 250)),
        // SROA-friendly shapes: a short-lived tuple (spelled as cons
        // cells) built and immediately projected every iteration. The
        // outer cell of each tuple never escapes and is never aliased,
        // so the escape lattice licenses scalar replacement and the VM
        // runs the loop without allocating it.
        ("tuple_accumulate", tuple_accumulate_source(3000)),
        ("pair_product", pair_product_source(2500)),
    ]
}

/// A fold whose step builds a local `(i, acc)` tuple and tears it apart
/// in the same expression — the canonical scalar-replacement target.
fn tuple_accumulate_source(n: usize) -> String {
    format!(
        "letrec
           step i acc = letrec t = cons i (cons acc nil)
                        in (car t) * 2 + car (cdr t);
           loop n acc = if n = 0 then acc else loop (n - 1) (step n acc)
         in loop {n} 0"
    )
}

/// A product-of-pairs loop: each iteration's pair is projected twice and
/// dies immediately.
fn pair_product_source(n: usize) -> String {
    format!(
        "letrec
           dot n acc = if n = 0 then acc
                       else letrec p = cons (n * 3) (cons (n + 7) nil)
                            in dot (n - 1) (acc + (car p) * car (cdr p))
         in dot {n} 0"
    )
}

/// Renders the generational-GC counters of a finished run as a JSON
/// object body (no braces).
fn gc_counters(stats: &RuntimeStats) -> String {
    format!(
        "\"minor_gcs\": {}, \"major_gcs\": {}, \"promoted\": {}, \
         \"pretenured\": {}, \"nursery_fallbacks\": {}, \"allocs_elided\": {}",
        stats.minor_gcs,
        stats.major_gcs,
        stats.promoted,
        stats.pretenured,
        stats.nursery_fallbacks,
        stats.allocs_elided
    )
}

/// Minimum wall time per contestant over 9 *interleaved* sampling
/// rounds (3 warmups each first). Interleaving exposes every contestant
/// to the same load profile, so a transient spike cannot skew one side
/// of a ratio the way back-to-back phases can.
fn interleaved_mins(fs: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in fs.iter_mut() {
        for _ in 0..3 {
            f();
        }
    }
    let mut mins = vec![Duration::MAX; fs.len()];
    for _ in 0..9 {
        for (i, f) in fs.iter_mut().enumerate() {
            let start = Instant::now();
            f();
            let d = start.elapsed();
            if d < mins[i] {
                mins[i] = d;
            }
        }
    }
    mins
}

/// Runs `ir` once on the VM under `config` and returns the run's stats.
fn vm_stats(ir: &nml_bench::runner::Built, config: &InterpConfig) -> RuntimeStats {
    let mut vm = Vm::with_config(&ir.ir, config.clone()).expect("vm");
    black_box(vm.run().expect("vm run"));
    vm.heap.stats.clone()
}

/// The generational-heap benchmark: a churn loop allocating short-lived
/// lists while a large list stays live across the whole run. The legacy
/// single-space collector re-marks the live list on every collection;
/// minor collections never traverse it (it is old after one promotion,
/// and old cells are cut points), and the optimized build pretenures it
/// so it never even costs a promotion.
fn gen_heap_workload() -> String {
    // The big list is the program result, so `mklist`'s cells provably
    // escape (pretenure target); the temporaries are consed inline and
    // only null-tested by `keep`'s provably-local parameter, so they
    // stay nursery-allocated (and the stack pass may region them).
    "letrec
       mklist n = if n = 0 then nil else cons n (mklist (n - 1));
       keep t big = if (null t) then big else big;
       churn k big = if k = 0 then big
                     else churn (k - 1) (keep (cons k (cons k (cons k nil))) big)
     in churn 12000 (mklist 2000)"
        .to_owned()
}

/// Benchmarks the churn workload under three heap configurations —
/// legacy single-space (`--gen-gc=off`), generational, and generational
/// with the full pass manager (escape-informed pretenuring) — and
/// returns the `"gen_gc"` JSON section.
fn bench_gen_heap_section() -> String {
    let src = gen_heap_workload();
    let plain = build(&src);
    let mut optimized = build(&src);
    nml_opt::optimize(
        &mut optimized.ir,
        &optimized.analysis,
        &nml_opt::OptOptions::default(),
    );
    let legacy_cfg = InterpConfig {
        heap: HeapConfig {
            gen_gc: false,
            ..HeapConfig::default()
        },
        ..InterpConfig::default()
    };
    let gen_cfg = InterpConfig::default();
    let mins = interleaved_mins(&mut [
        &mut || {
            let mut vm = Vm::with_config(&plain.ir, legacy_cfg.clone()).expect("vm");
            black_box(vm.run().expect("vm run"));
        },
        &mut || {
            let mut vm = Vm::with_config(&plain.ir, gen_cfg.clone()).expect("vm");
            black_box(vm.run().expect("vm run"));
        },
        &mut || {
            let mut vm = Vm::with_config(&optimized.ir, gen_cfg.clone()).expect("vm");
            black_box(vm.run().expect("vm run"));
        },
    ]);
    let (legacy_t, gen_t, pre_t) = (mins[0], mins[1], mins[2]);
    let legacy_s = vm_stats(&plain, &legacy_cfg);
    let gen_s = vm_stats(&plain, &gen_cfg);
    let pre_s = vm_stats(&optimized, &gen_cfg);
    assert_eq!(
        legacy_s.minor_gcs, 0,
        "legacy heap must never run a minor GC"
    );
    assert!(gen_s.minor_gcs > 0, "gen heap must exercise minor GCs");
    assert!(
        pre_s.pretenured > 0,
        "optimized build must route escaping sites old"
    );
    let speedup = legacy_t.as_nanos() as f64 / gen_t.as_nanos().max(1) as f64;
    let pre_speedup = legacy_t.as_nanos() as f64 / pre_t.as_nanos().max(1) as f64;
    println!(
        "bench gen_gc/churn_with_live_set: legacy {legacy_t:?} gen {gen_t:?} ({speedup:.2}x) \
         gen+pretenure {pre_t:?} ({pre_speedup:.2}x)"
    );
    let mut s = String::from("  \"gen_gc\": {\n");
    let _ = writeln!(s, "    \"workload\": \"churn_with_live_set\",");
    let _ = writeln!(
        s,
        "    \"legacy\": {{ \"ns\": {}, {} }},",
        legacy_t.as_nanos(),
        gc_counters(&legacy_s)
    );
    let _ = writeln!(
        s,
        "    \"gen\": {{ \"ns\": {}, \"speedup_vs_legacy\": {speedup:.3}, {} }},",
        gen_t.as_nanos(),
        gc_counters(&gen_s)
    );
    let _ = writeln!(
        s,
        "    \"gen_pretenured\": {{ \"ns\": {}, \"speedup_vs_legacy\": {pre_speedup:.3}, {} }}",
        pre_t.as_nanos(),
        gc_counters(&pre_s)
    );
    s.push_str("  },\n");
    s
}

/// The scalar-replacement section: the VM on the same workload with and
/// without SROA marks. The counters prove the allocations actually
/// vanished (not merely got cheaper), and the timings price the win.
fn bench_sroa_section() -> String {
    let workloads = [
        ("tuple_accumulate", tuple_accumulate_source(3000)),
        ("pair_product", pair_product_source(2500)),
    ];
    let mut s = String::from("  \"sroa\": {\n");
    for (wi, (name, src)) in workloads.iter().enumerate() {
        let plain = build(src);
        let mut elided = build(src);
        let marked = nml_opt::annotate_sroa(&mut elided.ir, &elided.analysis);
        assert!(marked > 0, "{name}: the lattice must license elision");
        let mins = interleaved_mins(&mut [
            &mut || {
                let mut vm = Vm::with_config(&plain.ir, InterpConfig::default()).expect("vm");
                black_box(vm.run().expect("vm run"));
            },
            &mut || {
                let mut vm = Vm::with_config(&elided.ir, InterpConfig::default()).expect("vm");
                black_box(vm.run().expect("vm run"));
            },
        ]);
        let (off_t, on_t) = (mins[0], mins[1]);
        let off_s = vm_stats(&plain, &InterpConfig::default());
        let on_s = vm_stats(&elided, &InterpConfig::default());
        assert_eq!(off_s.allocs_elided, 0, "{name}: unmarked IR never elides");
        assert!(on_s.allocs_elided > 0, "{name}: VM must elide marked sites");
        assert!(
            on_s.heap_allocs < off_s.heap_allocs,
            "{name}: elision must reduce real heap allocations"
        );
        let speedup = off_t.as_nanos() as f64 / on_t.as_nanos().max(1) as f64;
        println!(
            "bench sroa/{name}: off {off_t:?} on {on_t:?} ({speedup:.2}x, \
             {} cells elided)",
            on_s.allocs_elided
        );
        let _ = writeln!(s, "    \"{name}\": {{");
        let _ = writeln!(s, "      \"vm_ns\": {},", off_t.as_nanos());
        let _ = writeln!(s, "      \"vm_sroa_ns\": {},", on_t.as_nanos());
        let _ = writeln!(s, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(s, "      \"gc\": {{ {} }}", gc_counters(&on_s));
        let _ = writeln!(
            s,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    s.push_str("  },\n");
    s
}

/// B-7: tree-walking interpreter vs bytecode VM on the scaled corpus.
/// Each engine runs the *same* lowered IR under the default
/// configuration; the medians, per-workload GC counters, the
/// generational-heap section, and the geometric-mean speedup are
/// written to `BENCH_runtime.json`, and the run fails below the 3x
/// floor.
fn bench_engine_comparison(_c: &mut Criterion) {
    let workloads = engine_workloads();
    let mut json = String::from("{\n  \"engine_comparison\": {\n");
    let mut log_speedups: Vec<f64> = Vec::new();
    println!("group engine_comparison");
    for (wi, (name, src)) in workloads.iter().enumerate() {
        let mut b = build(src);
        // Mirror the CLI default for the VM: SROA marks ride the shared
        // IR. The tree-walker treats a mark as plain heap (it stays the
        // oracle), only the VM scalarizes — the correctness guard below
        // therefore also exercises the elision.
        nml_opt::annotate_sroa(&mut b.ir, &b.analysis);
        // Correctness guard: both engines must produce the same integer
        // before their timings are comparable at all.
        let tree_val = Interp::with_config(&b.ir, InterpConfig::default())
            .expect("interp")
            .run()
            .expect("tree run");
        let vm_val = Vm::with_config(&b.ir, InterpConfig::default())
            .expect("vm")
            .run()
            .expect("vm run");
        match (&tree_val, &vm_val) {
            (Value::Int(a), Value::Int(b)) if a == b => {}
            _ => panic!("{name}: engines disagree: tree={tree_val:?} vm={vm_val:?}"),
        }
        let mins = interleaved_mins(&mut [
            &mut || {
                let mut interp =
                    Interp::with_config(&b.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("tree run"));
            },
            &mut || {
                let mut vm = Vm::with_config(&b.ir, InterpConfig::default()).expect("vm");
                black_box(vm.run().expect("vm run"));
            },
        ]);
        let (tree, vm) = (mins[0], mins[1]);
        let gc = vm_stats(&b, &InterpConfig::default());
        let speedup = tree.as_nanos() as f64 / vm.as_nanos().max(1) as f64;
        log_speedups.push(speedup.ln());
        println!("bench engine_comparison/{name}: tree {tree:?} vm {vm:?} speedup {speedup:.2}x");
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"tree_ns\": {},", tree.as_nanos());
        let _ = writeln!(json, "      \"vm_ns\": {},", vm.as_nanos());
        let _ = writeln!(json, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(json, "      \"gc\": {{ {} }}", gc_counters(&gc));
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp();
    json.push_str("  },\n");
    json.push_str(&bench_gen_heap_section());
    json.push_str(&bench_sroa_section());
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.3}");
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }
    println!("bench engine_comparison/geomean: {geomean:.2}x");
    assert!(
        geomean >= 3.0,
        "VM speedup regressed: geometric mean {geomean:.2}x is below the 3x floor"
    );
}

criterion_group!(
    benches,
    bench_rev_vs_rev_r,
    bench_ps_vs_ps_r,
    bench_stack_alloc,
    bench_engine_comparison
);
criterion_main!(benches);
