//! T-R2 as wall-clock: baseline vs DCONS-reuse interpretation of the
//! paper's transformed functions (`REV'`, `PS''`), and T-R1 as
//! wall-clock: heap vs stack allocation for literal arguments.
//!
//! Absolute times are ours, not the paper's (they had no implementation);
//! the *shape* — reuse wins, and wins more as n grows — is the claim
//! under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nml_bench::runner::{build, build_ps, build_rev, build_stack_variant, sum_literal_source};
use nml_runtime::{Interp, InterpConfig};
use std::hint::black_box;

fn bench_rev_vs_rev_r(c: &mut Criterion) {
    let (b, rev, rev_r) = build_rev();
    let mut g = c.benchmark_group("reverse");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).collect();
        for (label, func) in [("baseline", rev), ("dcons", rev_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_ps_vs_ps_r(c: &mut Criterion) {
    let (b, ps, ps_r) = build_ps();
    let mut g = c.benchmark_group("partition_sort");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 1000).collect();
        for (label, func) in [("baseline", ps), ("dcons", ps_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_stack_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_literal");
    for n in [256usize, 1024] {
        let base = build(&sum_literal_source(n));
        let stacked = build_stack_variant(n);
        g.bench_with_input(BenchmarkId::new("heap", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&base.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
        g.bench_with_input(BenchmarkId::new("stack", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&stacked.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rev_vs_rev_r,
    bench_ps_vs_ps_r,
    bench_stack_alloc
);
criterion_main!(benches);
