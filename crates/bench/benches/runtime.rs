//! T-R2 as wall-clock: baseline vs DCONS-reuse interpretation of the
//! paper's transformed functions (`REV'`, `PS''`), and T-R1 as
//! wall-clock: heap vs stack allocation for literal arguments.
//!
//! Absolute times are ours, not the paper's (they had no implementation);
//! the *shape* — reuse wins, and wins more as n grows — is the claim
//! under test.
//!
//! B-7 (`bench_engine_comparison`): the bytecode VM against the
//! tree-walking interpreter on scaled-up corpus workloads. Medians land
//! in `BENCH_runtime.json` at the workspace root, and the run fails if
//! the VM's geometric-mean speedup drops below 3x — the engine's reason
//! to exist, enforced on every bench run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nml_bench::runner::{
    build, build_ps, build_rev, build_stack_variant, create_consume_source,
    repeated_consume_source, sum_literal_source,
};
use nml_runtime::{Interp, InterpConfig, Value, Vm};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_rev_vs_rev_r(c: &mut Criterion) {
    let (b, rev, rev_r) = build_rev();
    let mut g = c.benchmark_group("reverse");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).collect();
        for (label, func) in [("baseline", rev), ("dcons", rev_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_ps_vs_ps_r(c: &mut Criterion) {
    let (b, ps, ps_r) = build_ps();
    let mut g = c.benchmark_group("partition_sort");
    for n in [64usize, 256] {
        let input: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 1000).collect();
        for (label, func) in [("baseline", ps), ("dcons", ps_r)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| {
                    let mut interp = Interp::new(&b.ir).expect("interp");
                    let l = interp.make_int_list(&input);
                    black_box(interp.call(func, vec![l]).expect("call"))
                })
            });
        }
    }
    g.finish();
}

fn bench_stack_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_literal");
    for n in [256usize, 1024] {
        let base = build(&sum_literal_source(n));
        let stacked = build_stack_variant(n);
        g.bench_with_input(BenchmarkId::new("heap", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&base.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
        g.bench_with_input(BenchmarkId::new("stack", n), &n, |bench, _| {
            bench.iter(|| {
                let mut interp =
                    Interp::with_config(&stacked.ir, InterpConfig::default()).expect("interp");
                black_box(interp.run().expect("run"))
            })
        });
    }
    g.finish();
}

/// Medians a closure over 3 warm-up + 9 timed runs.
fn median_of<F: FnMut()>(mut f: F) -> Duration {
    for _ in 0..3 {
        f();
    }
    let mut samples: Vec<Duration> = (0..9)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// The corpus workloads scaled to interpretation-dominated sizes. Every
/// main body reduces to an integer so the engines' results can be
/// compared directly, without heap traversal.
fn engine_workloads() -> Vec<(&'static str, String)> {
    vec![
        (
            "naive_reverse",
            "letrec
               append x y = if (null x) then y else cons (car x) (append (cdr x) y);
               rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
               mklist n = if n = 0 then nil else cons n (mklist (n - 1));
               sum l = if (null l) then 0 else (car l) + sum (cdr l)
             in sum (rev (mklist 120))"
                .to_owned(),
        ),
        (
            "partition_sort",
            "letrec
               append x y = if (null x) then y else cons (car x) (append (cdr x) y);
               split p x l h =
                 if (null x) then (cons l (cons h nil))
                 else if (car x) < p
                      then split p (cdr x) (cons (car x) l) h
                      else split p (cdr x) l (cons (car x) h);
               ps x = if (null x) then nil
                      else append (ps (car (split (car x) (cdr x) nil nil)))
                                  (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))));
               mklist n = if n = 0 then nil else cons n (mklist (n - 1));
               sum l = if (null l) then 0 else (car l) + sum (cdr l)
             in sum (ps (mklist 90))"
                .to_owned(),
        ),
        (
            "map_pair",
            "letrec
               pair x = cons (car x) (cons (car (cdr x)) nil);
               map f l = if (null l) then nil else cons (f (car l)) (map f (cdr l));
               mkpairs n = if n = 0 then nil
                           else cons (cons n (cons (n + 1) nil)) (mkpairs (n - 1));
               sumheads l = if (null l) then 0 else (car (car l)) + sumheads (cdr l)
             in sumheads (map pair (mkpairs 600))"
                .to_owned(),
        ),
        ("create_consume", create_consume_source(3000)),
        ("repeated_consume", repeated_consume_source(64, 250)),
    ]
}

/// B-7: tree-walking interpreter vs bytecode VM on the scaled corpus.
/// Each engine runs the *same* lowered IR under the default
/// configuration; the medians and the geometric-mean speedup are written
/// to `BENCH_runtime.json`, and the run fails below the 3x floor.
fn bench_engine_comparison(_c: &mut Criterion) {
    let workloads = engine_workloads();
    let mut json = String::from("{\n  \"engine_comparison\": {\n");
    let mut log_speedups: Vec<f64> = Vec::new();
    println!("group engine_comparison");
    for (wi, (name, src)) in workloads.iter().enumerate() {
        let b = build(src);
        // Correctness guard: both engines must produce the same integer
        // before their timings are comparable at all.
        let tree_val = Interp::with_config(&b.ir, InterpConfig::default())
            .expect("interp")
            .run()
            .expect("tree run");
        let vm_val = Vm::with_config(&b.ir, InterpConfig::default())
            .expect("vm")
            .run()
            .expect("vm run");
        match (&tree_val, &vm_val) {
            (Value::Int(a), Value::Int(b)) if a == b => {}
            _ => panic!("{name}: engines disagree: tree={tree_val:?} vm={vm_val:?}"),
        }
        let tree = median_of(|| {
            let mut interp = Interp::with_config(&b.ir, InterpConfig::default()).expect("interp");
            black_box(interp.run().expect("tree run"));
        });
        let vm = median_of(|| {
            let mut vm = Vm::with_config(&b.ir, InterpConfig::default()).expect("vm");
            black_box(vm.run().expect("vm run"));
        });
        let speedup = tree.as_nanos() as f64 / vm.as_nanos().max(1) as f64;
        log_speedups.push(speedup.ln());
        println!("bench engine_comparison/{name}: tree {tree:?} vm {vm:?} speedup {speedup:.2}x");
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"tree_ns\": {},", tree.as_nanos());
        let _ = writeln!(json, "      \"vm_ns\": {},", vm.as_nanos());
        let _ = writeln!(json, "      \"speedup\": {speedup:.3}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp();
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.3}");
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }
    println!("bench engine_comparison/geomean: {geomean:.2}x");
    assert!(
        geomean >= 3.0,
        "VM speedup regressed: geometric mean {geomean:.2}x is below the 3x floor"
    );
}

criterion_group!(
    benches,
    bench_rev_vs_rev_r,
    bench_ps_vs_ps_r,
    bench_stack_alloc,
    bench_engine_comparison
);
criterion_main!(benches);
