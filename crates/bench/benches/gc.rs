//! T-R3 / F-R1 as wall-clock: garbage-collection work under pressure,
//! baseline vs block reclamation vs stack allocation, for the
//! `sum (create_list n)` / `sum [literal]` workloads (§A.3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nml_bench::runner::{
    build, build_repeated_block_variant, build_repeated_stack_variant, pressured_config,
    repeated_consume_source, repeated_literal_source,
};
use nml_runtime::Interp;
use std::hint::black_box;

fn bench_block_vs_gc(c: &mut Criterion) {
    // 16 iterations of produce/consume: dead inputs must actually be
    // reclaimed, which is where block splices beat GC sweeps.
    let k = 16usize;
    let mut g = c.benchmark_group("repeated_consume_gc64");
    for n in [256usize, 1024] {
        let base = build(&repeated_consume_source(n, k));
        let blk = build_repeated_block_variant(n, k);
        g.bench_with_input(BenchmarkId::new("baseline", n), &n, |bench, _| {
            bench.iter(|| {
                let mut i = Interp::with_config(&base.ir, pressured_config(64)).expect("interp");
                black_box(i.run().expect("run"))
            })
        });
        g.bench_with_input(BenchmarkId::new("block", n), &n, |bench, _| {
            bench.iter(|| {
                let mut i = Interp::with_config(&blk.ir, pressured_config(64)).expect("interp");
                black_box(i.run().expect("run"))
            })
        });
    }
    g.finish();
}

fn bench_stack_vs_gc(c: &mut Criterion) {
    let k = 16usize;
    let mut g = c.benchmark_group("repeated_literal_gc64");
    for n in [256usize, 1024] {
        let base = build(&repeated_literal_source(n, k));
        let stacked = build_repeated_stack_variant(n, k);
        g.bench_with_input(BenchmarkId::new("baseline", n), &n, |bench, _| {
            bench.iter(|| {
                let mut i = Interp::with_config(&base.ir, pressured_config(64)).expect("interp");
                black_box(i.run().expect("run"))
            })
        });
        g.bench_with_input(BenchmarkId::new("stack", n), &n, |bench, _| {
            bench.iter(|| {
                let mut i = Interp::with_config(&stacked.ir, pressured_config(64)).expect("interp");
                black_box(i.run().expect("run"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_block_vs_gc, bench_stack_vs_gc);
criterion_main!(benches);
