//! B-1: cost of the escape analysis itself (the paper's §7 concern:
//! "the computational complexity of finding fixpoints of higher order
//! functions"). One criterion group per corpus program, measuring the
//! full parse → infer → fixpoint-analysis pipeline, plus a group for
//! analysis-only on a pre-parsed program.

use criterion::{criterion_group, criterion_main, Criterion};
use nml_escape::{analyze_source, global_escape, Engine};
use nml_escape_analysis::corpus;
use nml_syntax::{parse_program, Symbol};
use nml_types::infer_program;
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze_source");
    for w in corpus::ALL {
        g.bench_function(w.name, |b| {
            b.iter(|| black_box(analyze_source(black_box(w.source)).expect("analysis")))
        });
    }
    g.finish();
}

fn bench_fixpoint_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixpoint_only");
    for w in [corpus::PARTITION_SORT, corpus::MAP_PAIR, corpus::MERGE_SORT] {
        let program = parse_program(w.source).expect("parse");
        let info = infer_program(&program).expect("infer");
        g.bench_function(w.name, |b| {
            b.iter(|| {
                let mut en = Engine::new(&program, &info);
                for f in w.functions {
                    black_box(global_escape(&mut en, Symbol::intern(f)).expect("test"));
                }
            })
        });
    }
    g.finish();
}

fn bench_front_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("front_end");
    let src = corpus::PARTITION_SORT.source;
    g.bench_function("parse", |b| {
        b.iter(|| black_box(parse_program(black_box(src)).expect("parse")))
    });
    let parsed = parse_program(src).expect("parse");
    g.bench_function("infer", |b| {
        b.iter(|| black_box(infer_program(black_box(&parsed)).expect("infer")))
    });
    g.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_fixpoint_only, bench_front_end);
criterion_main!(benches);
