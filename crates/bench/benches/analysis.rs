//! B-1: cost of the escape analysis itself (the paper's §7 concern:
//! "the computational complexity of finding fixpoints of higher order
//! functions"). One criterion group per corpus program, measuring the
//! full parse → infer → fixpoint-analysis pipeline, plus a group for
//! analysis-only on a pre-parsed program.

use criterion::{criterion_group, criterion_main, Criterion};
use nml_escape::{
    analyze_program_whole_program, analyze_source, analyze_source_scheduled, global_escape, Budget,
    Engine, EngineConfig, PolyMode, ScheduleOptions,
};
use nml_escape_analysis::corpus;
use nml_syntax::{parse_program, Symbol};
use nml_types::infer_program;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze_source");
    for w in corpus::ALL {
        g.bench_function(w.name, |b| {
            b.iter(|| black_box(analyze_source(black_box(w.source)).expect("analysis")))
        });
    }
    g.finish();
}

fn bench_fixpoint_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixpoint_only");
    for w in [corpus::PARTITION_SORT, corpus::MAP_PAIR, corpus::MERGE_SORT] {
        let program = parse_program(w.source).expect("parse");
        let info = infer_program(&program).expect("infer");
        g.bench_function(w.name, |b| {
            b.iter(|| {
                let mut en = Engine::new(&program, &info);
                for f in w.functions {
                    black_box(global_escape(&mut en, Symbol::intern(f)).expect("test"));
                }
            })
        });
    }
    g.finish();
}

fn bench_front_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("front_end");
    let src = corpus::PARTITION_SORT.source;
    g.bench_function("parse", |b| {
        b.iter(|| black_box(parse_program(black_box(src)).expect("parse")))
    });
    let parsed = parse_program(src).expect("parse");
    g.bench_function("infer", |b| {
        b.iter(|| black_box(infer_program(black_box(&parsed)).expect("infer")))
    });
    g.finish();
}

/// A program of `n` mutually independent self-recursive functions — the
/// best case for wave parallelism (every SCC lands in wave 1).
fn wide_program(n: usize) -> String {
    let mut src = String::from("letrec\n");
    for i in 0..n {
        let _ = writeln!(
            src,
            "  f{i} l = if (null l) then nil else cons (car l) (f{i} (cdr l)){}",
            if i + 1 < n { ";" } else { "" }
        );
    }
    src.push_str("in f0 [1, 2, 3]");
    src
}

/// Medians a closure over 3 warm-up + 9 timed runs.
fn median_of<F: FnMut()>(mut f: F) -> Duration {
    for _ in 0..3 {
        f();
    }
    let mut samples: Vec<Duration> = (0..9)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// B-5: whole-program vs SCC-scheduled analysis (serial and `--jobs 4`,
/// cold and warm summary cache), on the corpus and on a wide synthetic
/// program. Besides the stdout lines, the medians are written to
/// `BENCH_analysis.json` at the workspace root so the perf trajectory of
/// the scheduler is diffable across commits.
fn bench_schedulers(_c: &mut Criterion) {
    let wide = wide_program(24);
    let workloads: Vec<(&str, &str)> = vec![
        ("partition_sort", corpus::PARTITION_SORT.source),
        ("merge_sort", corpus::MERGE_SORT.source),
        ("map_pair", corpus::MAP_PAIR.source),
        ("wide24", &wide),
    ];
    let cache_path = std::env::temp_dir().join(format!("nml-bench-cache-{}", std::process::id()));
    let scheduled = |src: &str, options: &ScheduleOptions| {
        black_box(
            analyze_source_scheduled(
                black_box(src),
                PolyMode::SimplestInstance,
                EngineConfig::default(),
                Budget::unlimited(),
                options,
            )
            .expect("analysis"),
        )
    };
    let mut json = String::from("{\n");
    println!("group schedulers");
    for (wi, (name, src)) in workloads.iter().enumerate() {
        let serial = ScheduleOptions::default();
        let jobs4 = ScheduleOptions {
            jobs: 4,
            ..ScheduleOptions::default()
        };
        let cached = ScheduleOptions {
            summary_cache: Some(cache_path.clone()),
            ..ScheduleOptions::default()
        };
        let whole = median_of(|| {
            let program = parse_program(src).expect("parse");
            let info = infer_program(&program).expect("infer");
            black_box(
                analyze_program_whole_program(
                    program,
                    info,
                    EngineConfig::default(),
                    Budget::unlimited(),
                )
                .expect("analysis"),
            );
        });
        let scc_serial = median_of(|| {
            scheduled(src, &serial);
        });
        let scc_jobs4 = median_of(|| {
            scheduled(src, &jobs4);
        });
        let cold_cache = median_of(|| {
            let _ = std::fs::remove_file(&cache_path);
            scheduled(src, &cached);
        });
        // One priming run, then every timed run is a pure hit.
        let _ = std::fs::remove_file(&cache_path);
        scheduled(src, &cached);
        let warm_cache = median_of(|| {
            let a = scheduled(src, &cached);
            assert_eq!(a.schedule.sccs_solved, 0, "{name}: warm run must hit");
        });
        let _ = std::fs::remove_file(&cache_path);
        let modes = [
            ("whole_program", whole),
            ("scc_serial", scc_serial),
            ("scc_jobs4", scc_jobs4),
            ("scc_cold_cache", cold_cache),
            ("scc_warm_cache", warm_cache),
        ];
        let _ = writeln!(json, "  \"{name}\": {{");
        for (mi, (mode, t)) in modes.iter().enumerate() {
            println!("bench schedulers/{name}/{mode}: median {t:?} over 9 samples");
            let _ = writeln!(
                json,
                "    \"{mode}_ns\": {}{}",
                t.as_nanos(),
                if mi + 1 < modes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "  }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }
}

/// B-7: scaling on the mega corpus — 2000 generated functions in mixed
/// clusters, the workload `--jobs` exists for. Measures analysis-only
/// (parse/infer hoisted out) serial vs 4 workers, plus the incremental
/// session: cold start, then a warm single-binding re-analysis, which
/// must re-solve only the edited cluster's dirty cone and come in under
/// a millisecond. Medians land in the `scaling` key of
/// `BENCH_analysis.json`, with the host core count recorded so the
/// parallel numbers are interpretable: on a single-core host jobs4 can
/// only tie (and the guard merely requires it not to lose badly); with
/// ≥ 2 cores it must win outright.
fn bench_scaling(_c: &mut Criterion) {
    use nml_corpusgen::{generate, parse_shape};
    use nml_escape::{analyze_program_scheduled, Incremental};

    let shape = parse_shape("mega").expect("shape");
    let corpus = generate(0, &shape);
    let src = corpus.source();
    let program = parse_program(&src).expect("parse");
    let info = infer_program(&program).expect("infer");
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let analyze = |jobs: usize| {
        let options = ScheduleOptions {
            jobs,
            ..ScheduleOptions::default()
        };
        black_box(
            analyze_program_scheduled(
                program.clone(),
                info.clone(),
                EngineConfig::default(),
                Budget::unlimited(),
                &options,
            )
            .expect("analysis"),
        )
    };
    println!(
        "group scaling ({} functions, {host_cores} cores)",
        shape.functions
    );
    let serial = median_of(|| {
        analyze(1);
    });
    let jobs4 = median_of(|| {
        analyze(4);
    });
    println!("bench scaling/mega2000/serial: median {serial:?} over 9 samples");
    println!("bench scaling/mega2000/jobs4: median {jobs4:?} over 9 samples");
    if host_cores >= 2 {
        assert!(
            jobs4 < serial,
            "with {host_cores} cores, jobs4 ({jobs4:?}) must beat serial ({serial:?})"
        );
    } else {
        assert!(
            jobs4 <= serial * 3 / 2,
            "on one core, jobs4 ({jobs4:?}) must not lose badly to serial ({serial:?})"
        );
    }

    // Incremental: cold session build, then warm single-binding updates.
    // Alternate between two RHS texts for one binding so every timed
    // update really dirties its cone (a repeat of the same text would
    // short-circuit on the content hash and re-solve nothing).
    let cold_start = Instant::now();
    let mut inc = Incremental::from_source(&src).expect("cold incremental");
    let cold = cold_start.elapsed();
    let m = corpus.mutate(0xbead);
    let original = corpus.bindings[m.index].rhs.clone();
    let mut flip = false;
    let warm = median_of(|| {
        flip = !flip;
        let rhs = if flip { &m.rhs } else { &original };
        let a = inc.update_binding(&m.name, rhs).expect("warm update");
        assert!(a.schedule.sccs_solved >= 1, "update must dirty its cone");
        black_box(a.schedule.sccs_solved);
    });
    let solved = inc.analysis().schedule.sccs_solved;
    let reused = inc.analysis().schedule.sccs_reused;
    println!("bench scaling/mega2000/incremental_cold: {cold:?}");
    println!(
        "bench scaling/mega2000/incremental_warm: median {warm:?} over 9 samples \
         ({solved} solved, {reused} reused)"
    );
    assert!(
        warm < Duration::from_millis(1),
        "warm single-binding re-analysis must stay under 1ms, got {warm:?}"
    );

    // Splice a `scaling` section into BENCH_analysis.json (written just
    // before by `bench_schedulers`), keeping one diffable file per group.
    let section = format!(
        "  \"scaling\": {{\n    \"host_cores\": {host_cores},\n    \"functions\": {},\n    \
         \"serial_ns\": {},\n    \"jobs4_ns\": {},\n    \"incremental_cold_ns\": {},\n    \
         \"incremental_warm_ns\": {},\n    \"warm_sccs_solved\": {solved},\n    \
         \"warm_sccs_reused\": {reused}\n  }}\n}}\n",
        shape.functions,
        serial.as_nanos(),
        jobs4.as_nanos(),
        cold.as_nanos(),
        warm.as_nanos()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    match std::fs::read_to_string(out) {
        Ok(existing) => {
            // Drop any previous scaling section, then strip the closing
            // brace so the fresh section can take its place.
            let head = match existing.find("  \"scaling\":") {
                Some(pos) => &existing[..pos],
                None => existing.trim_end().strip_suffix('}').unwrap_or("{\n"),
            };
            let combined = format!("{},\n{section}", head.trim_end().trim_end_matches(','));
            if let Err(e) = std::fs::write(out, &combined) {
                eprintln!("warning: cannot write {out}: {e}");
            } else {
                println!("updated {out} with the scaling section");
            }
        }
        Err(e) => eprintln!("warning: cannot read {out}: {e}"),
    }
}

/// B-6: runtime overhead of checked-optimization mode — the optimized
/// program under a plain heap vs under the tombstoning sentinel heap.
/// Medians land in `BENCH_checked.json` next to `BENCH_analysis.json`,
/// together with the tombstone volume each workload generates, so the
/// cost of `--checked` is diffable across commits.
fn bench_checked_overhead(_c: &mut Criterion) {
    use nml_escape_analysis::pipeline::{compile_optimized, run_with};
    use nml_escape_analysis::runtime::{HeapConfig, InterpConfig};
    let workloads: Vec<(&str, &str)> = vec![
        ("partition_sort", corpus::PARTITION_SORT.source),
        ("merge_sort", corpus::MERGE_SORT.source),
        ("map_pair", corpus::MAP_PAIR.source),
    ];
    let checked_config = || InterpConfig {
        heap: HeapConfig {
            checked: true,
            ..HeapConfig::default()
        },
        ..InterpConfig::default()
    };
    let mut json = String::from("{\n");
    println!("group checked_overhead");
    for (wi, (name, src)) in workloads.iter().enumerate() {
        let compiled = compile_optimized(src).expect("front end");
        let plain = median_of(|| {
            black_box(run_with(&compiled.ir, InterpConfig::default()).expect("plain run"));
        });
        let checked = median_of(|| {
            black_box(run_with(&compiled.ir, checked_config()).expect("checked run"));
        });
        let probe = run_with(&compiled.ir, checked_config()).expect("checked run");
        let tombstoned = probe.stats.tombstoned;
        let reuse_copies = probe.stats.reuse_copies;
        println!(
            "bench checked_overhead/{name}: plain {plain:?} checked {checked:?} \
             (tombstoned={tombstoned} reuse-copies={reuse_copies})"
        );
        let _ = writeln!(json, "  \"{name}\": {{");
        let _ = writeln!(json, "    \"optimized_ns\": {},", plain.as_nanos());
        let _ = writeln!(
            json,
            "    \"optimized_checked_ns\": {},",
            checked.as_nanos()
        );
        let _ = writeln!(json, "    \"tombstoned\": {tombstoned},");
        let _ = writeln!(json, "    \"reuse_copies\": {reuse_copies}");
        let _ = writeln!(
            json,
            "  }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checked.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_fixpoint_only,
    bench_front_end,
    bench_schedulers,
    bench_scaling,
    bench_checked_overhead
);
criterion_main!(benches);
