//! Serving-layer throughput and latency: the `nml-serve` NDJSON server
//! against a direct in-process `Vm::call` loop on the same compiled
//! program.
//!
//! Three measurements land in `BENCH_serve.json` at the workspace root:
//!
//! - **fault-free latency** — one client, sequential requests; p50/p99
//!   per-request wall time over the socket, versus the median of the
//!   same call made directly on a `Vm`. The run fails if the serve
//!   path's p50 exceeds the direct loop by more than 10%: the protocol,
//!   queue, and socket must stay in the noise next to real work.
//! - **throughput** — 4 clients against 4 workers, aggregate req/s.
//! - **degraded rate** — a checked-mode server whose compile was
//!   sabotaged at every cons site, so each request recovers through
//!   quarantine; the fraction of responses marked `degraded`.
//! - **reload** — request p99 while a reload storm swaps epochs under
//!   the traffic, versus the steady state on the same server, plus the
//!   time from sending a reload to the first response off the new
//!   epoch. The run fails if an eval admitted after a reload's ok
//!   response is answered by the old epoch: the swap must never stall
//!   the request path by more than one admission cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use nml_serve::{compile_program, serve, Client, ServeConfig};
use nml_syntax::Symbol;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Naive-reverse churn: `work n` allocates O(n^2) cells, enough that a
/// single request costs milliseconds and socket overhead is measurable
/// against it rather than dominating it.
const SRC: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l);
  work n = sum (rev (mklist n))
in rev (mklist 8)";

const WORK_N: i64 = 256;
/// sum(1..=WORK_N), the expected result of every request.
const EXPECT: i64 = WORK_N * (WORK_N + 1) / 2;

/// Revision `k` of `SRC` for the reload storm: only the `pad` constant
/// differs, so every revision answers the timed evals identically.
fn reload_src(k: usize) -> String {
    SRC.replace(
        "in rev (mklist 8)",
        &format!(";\n  pad n = n + {k}\nin rev (mklist 8)"),
    )
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nml-serve-bench-{}-{tag}.sock", std::process::id()))
}

fn eval_line(id: usize) -> String {
    format!("{{\"op\":\"eval\",\"id\":{id},\"call\":\"work\",\"args\":[{WORK_N}]}}")
}

fn assert_ok_result(resp: &nml_serve::json::Json, expect: &str) {
    use nml_serve::json::Json;
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "{resp}"
    );
    assert_eq!(
        resp.get("result").and_then(Json::as_str),
        Some(expect),
        "{resp}"
    );
}

/// Starts a server for `SRC`, runs `body` with a connected client, then
/// drains and returns the server's final report.
fn with_server<F, R>(tag: &str, cfg: ServeConfig, body: F) -> (R, nml_serve::ServerReport)
where
    F: FnOnce(&PathBuf) -> R,
{
    let path = socket_path(tag);
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve(SRC, &path, &cfg))
    };
    let mut c = Client::connect_retry(&path, Duration::from_secs(10)).expect("connect");
    let out = body(&path);
    let resp = c
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(
        resp.get("status").and_then(nml_serve::json::Json::as_str),
        Some("ok")
    );
    drop(c);
    let report = server.join().expect("server thread").expect("serve ok");
    (out, report)
}

/// Median per-call time of `work WORK_N` on a long-lived `Vm` — the
/// floor the serve path is held to.
fn direct_vm_median(ir: &nml_opt::IrProgram) -> Duration {
    use nml_runtime::{InterpConfig, Value, Vm};
    let mut vm = Vm::with_config(ir, InterpConfig::default()).expect("vm");
    let work = Symbol::intern("work");
    let call = |vm: &mut Vm| {
        let v = vm.call(work, vec![Value::Int(WORK_N)]).expect("call");
        assert!(matches!(v, Value::Int(n) if n == EXPECT), "{v:?}");
        black_box(v);
    };
    for _ in 0..3 {
        call(&mut vm);
    }
    let mut samples: Vec<Duration> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..8 {
                call(&mut vm);
            }
            start.elapsed() / 8
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Sequential fault-free requests over the socket; returns the sorted
/// per-request latencies.
fn serve_latencies(path: &PathBuf, requests: usize) -> Vec<Duration> {
    let mut c = Client::connect_retry(path, Duration::from_secs(10)).expect("connect");
    let expect = EXPECT.to_string();
    for id in 0..3 {
        assert_ok_result(&c.request(&eval_line(id)).expect("warmup"), &expect);
    }
    let mut samples: Vec<Duration> = (0..requests)
        .map(|id| {
            let start = Instant::now();
            let resp = c.request(&eval_line(100 + id)).expect("timed request");
            let dt = start.elapsed();
            assert_ok_result(&resp, &expect);
            dt
        })
        .collect();
    samples.sort();
    samples
}

/// `clients` threads each issue `per_client` sequential requests;
/// returns aggregate requests per second.
fn serve_throughput(path: &PathBuf, clients: usize, per_client: usize) -> f64 {
    let expect = EXPECT.to_string();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..clients {
            let path = path.clone();
            let expect = expect.clone();
            s.spawn(move || {
                let mut c = Client::connect_retry(&path, Duration::from_secs(10)).expect("connect");
                for i in 0..per_client {
                    let resp = c.request(&eval_line(t * 10000 + i)).expect("request");
                    assert_ok_result(&resp, &expect);
                }
            });
        }
    });
    (clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

fn bench_serve(_c: &mut Criterion) {
    println!("group serve");
    let cfg = ServeConfig::default();
    let ir = compile_program(SRC, &cfg, &nml_opt::QuarantineSet::default(), true).expect("compile");
    let direct = direct_vm_median(&ir);

    // Fault-free latency distribution, single client.
    const LAT_REQS: usize = 72;
    let (lat, lat_report) = with_server("latency", ServeConfig::default(), |path| {
        serve_latencies(path, LAT_REQS)
    });
    assert_eq!(lat_report.panics, 0);
    assert_eq!(lat_report.degraded, 0);
    let p50 = lat[lat.len() / 2];
    let p99 = lat[lat.len() * 99 / 100];
    let overhead = p50.as_nanos() as f64 / direct.as_nanos().max(1) as f64;

    // Aggregate throughput, 4 clients on 4 workers.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 24;
    let (req_s, tp_report) = with_server("throughput", ServeConfig::default(), |path| {
        serve_throughput(path, CLIENTS, PER_CLIENT)
    });
    assert_eq!(tp_report.served_ok, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(tp_report.shed, 0, "sequential clients never overflow");

    // Degraded rate: checked mode with every cons site sabotaged. Body
    // evals return a list, so the sabotaged claims put stack-freed cells
    // in the result and every request must recover through quarantine.
    const DEGRADED_REQS: usize = 16;
    let checked_cfg = ServeConfig {
        workers: 2,
        checked: true,
        sabotage: nml_opt::SabotagePlan::stack((0..64).map(nml_opt::SiteId)),
        ..ServeConfig::default()
    };
    let ((), deg_report) = with_server("degraded", checked_cfg, |path| {
        let mut c = Client::connect_retry(path, Duration::from_secs(10)).expect("connect");
        for id in 0..DEGRADED_REQS {
            let resp = c
                .request(&format!("{{\"op\":\"eval\",\"id\":{id}}}"))
                .expect("checked request");
            assert_ok_result(&resp, "[1, 2, 3, 4, 5, 6, 7, 8]");
        }
    });
    let total = deg_report.served_ok + deg_report.guest_errors;
    let degraded_rate = deg_report.degraded as f64 / total.max(1) as f64;
    assert!(
        deg_report.quarantined_sites >= 1,
        "sabotage must trip checked mode: {deg_report:?}"
    );

    // Reload: the same eval traffic with and without an epoch-swap
    // storm underneath, plus time-to-first-new-epoch-response.
    const STORM_RELOADS: usize = 6;
    const STORM_REQS: usize = 48;
    let ((steady_p99, storm_p99, first_new), rl_report) =
        with_server("reload", ServeConfig::default(), |path| {
            let mut c = Client::connect_retry(path, Duration::from_secs(10)).expect("connect");
            let expect = EXPECT.to_string();
            let timed_evals = |c: &mut Client, n: usize, base: usize| -> Vec<Duration> {
                let mut v: Vec<Duration> = (0..n)
                    .map(|i| {
                        let start = Instant::now();
                        let resp = c.request(&eval_line(base + i)).expect("eval");
                        let dt = start.elapsed();
                        assert_ok_result(&resp, &expect);
                        dt
                    })
                    .collect();
                v.sort();
                v
            };
            let steady = timed_evals(&mut c, STORM_REQS, 0);

            // The storm: a second connection swaps revisions while the
            // timed evals run.
            let storm = std::thread::scope(|s| {
                s.spawn(|| {
                    let mut r =
                        Client::connect_retry(path, Duration::from_secs(10)).expect("reloader");
                    for k in 1..=STORM_RELOADS {
                        let req = nml_serve::json::Json::Obj(vec![
                            (
                                "op".to_owned(),
                                nml_serve::json::Json::Str("reload".to_owned()),
                            ),
                            ("id".to_owned(), nml_serve::json::Json::Int(9000 + k as i64)),
                            ("src".to_owned(), nml_serve::json::Json::Str(reload_src(k))),
                        ]);
                        let resp = r.request(&req.to_string()).expect("reload");
                        assert_eq!(
                            resp.get("status").and_then(nml_serve::json::Json::as_str),
                            Some("ok"),
                            "{resp}"
                        );
                        std::thread::sleep(Duration::from_millis(10));
                    }
                });
                timed_evals(&mut c, STORM_REQS, 1000)
            });

            // Time from sending one more reload to the first response
            // off the new epoch — which must be the very next eval.
            let req = nml_serve::json::Json::Obj(vec![
                (
                    "op".to_owned(),
                    nml_serve::json::Json::Str("reload".to_owned()),
                ),
                ("id".to_owned(), nml_serve::json::Json::Int(9999)),
                (
                    "src".to_owned(),
                    nml_serve::json::Json::Str(reload_src(STORM_RELOADS + 1)),
                ),
            ]);
            let t0 = Instant::now();
            let resp = c.request(&req.to_string()).expect("final reload");
            let desc = resp
                .get("result")
                .and_then(nml_serve::json::Json::as_str)
                .expect("reload desc");
            let new_epoch: i64 = desc
                .strip_prefix("epoch ")
                .and_then(|s| s.split(' ').next())
                .and_then(|s| s.parse().ok())
                .expect("epoch id in reload description");
            let resp = c.request(&eval_line(2000)).expect("first new-epoch eval");
            let first_new = t0.elapsed();
            assert_ok_result(&resp, &expect);
            assert_eq!(
                resp.get("epoch").and_then(nml_serve::json::Json::as_int),
                Some(new_epoch),
                "an eval admitted after the reload's ok response must land \
                 on the new epoch: {resp}"
            );
            (
                steady[steady.len() * 99 / 100],
                storm[storm.len() * 99 / 100],
                first_new,
            )
        });
    assert_eq!(rl_report.reloads_ok, STORM_RELOADS as u64 + 1);
    assert_eq!(rl_report.reloads_failed, 0);
    assert_eq!(rl_report.epoch_leaks, 0, "{rl_report:?}");

    println!("bench serve/direct_vm: {direct:?} per call");
    println!("bench serve/latency: p50 {p50:?} p99 {p99:?} overhead {overhead:.3}x");
    println!("bench serve/throughput: {req_s:.0} req/s ({CLIENTS} clients)");
    println!("bench serve/degraded_rate: {degraded_rate:.3}");
    println!(
        "bench serve/reload: steady p99 {steady_p99:?}, storm p99 {storm_p99:?} \
         ({STORM_RELOADS} reloads), first new-epoch response {first_new:?}"
    );

    let mut json = String::from("{\n  \"serve\": {\n");
    let _ = writeln!(json, "    \"work_n\": {WORK_N},");
    let _ = writeln!(json, "    \"direct_vm_ns\": {},", direct.as_nanos());
    let _ = writeln!(json, "    \"latency_p50_ns\": {},", p50.as_nanos());
    let _ = writeln!(json, "    \"latency_p99_ns\": {},", p99.as_nanos());
    let _ = writeln!(json, "    \"overhead_vs_direct\": {overhead:.3},");
    let _ = writeln!(json, "    \"throughput_req_s\": {req_s:.1},");
    let _ = writeln!(json, "    \"throughput_clients\": {CLIENTS},");
    let _ = writeln!(json, "    \"degraded_rate\": {degraded_rate:.3},");
    json.push_str("    \"reload\": {\n");
    let _ = writeln!(json, "      \"storm_reloads\": {STORM_RELOADS},");
    let _ = writeln!(json, "      \"steady_p99_ns\": {},", steady_p99.as_nanos());
    let _ = writeln!(json, "      \"storm_p99_ns\": {},", storm_p99.as_nanos());
    let _ = writeln!(
        json,
        "      \"time_to_first_new_epoch_ns\": {}",
        first_new.as_nanos()
    );
    json.push_str("    }\n  }\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }

    assert!(
        overhead <= 1.10,
        "fault-free serve path p50 ({p50:?}) exceeds the direct Vm loop \
         ({direct:?}) by more than 10%: {overhead:.3}x"
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
