//! # nml-corpusgen
//!
//! A seeded, fully deterministic generator of well-typed nml programs,
//! used both as the scaling workload for the SCC scheduler benchmarks
//! and as reusable property-test infrastructure (equivalence sweeps,
//! incremental-invalidation tests, runtime differentials).
//!
//! The generator builds programs from two function roles that compose
//! safely under Hindley–Milner inference and always terminate on finite
//! lists:
//!
//! - **transformers** `int list -> int list` — structural recursion on
//!   `cdr` behind a `null` guard, rebuilding (or extending) the spine;
//! - **consumers** `int list -> int` — structural recursion that folds
//!   the list into a scalar.
//!
//! Escape profiles map onto body templates: *local* sites are dead
//! conses/pairs immediately taken apart (`car (cons x [])`), *escaping*
//! sites flow into the result spine, and *unknown* sites escape only on
//! a data-dependent branch. Call-graph topology (deep chains, wide
//! independent fan-out, large mutual-recursion SCC rings, or mixed
//! clusters) is a separate knob, so scheduler stress and lattice stress
//! compose freely.
//!
//! Everything is derived from a single `u64` seed via splitmix64: the
//! same `(seed, shape)` pair produces byte-identical source on every
//! platform.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A tiny deterministic RNG (splitmix64), independent of any external
/// crate so generated corpora never drift with dependency versions.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound = 0` yields `0`).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Percentage check: true with probability `pct`/100.
    pub fn chance(&mut self, pct: u8) -> bool {
        self.below(100) < pct as usize
    }
}

/// Call-graph topology of a generated corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One deep dependency chain of singleton SCCs: `f0 → f1 → … → leaf`.
    Chain,
    /// Many independent self-recursive functions — maximal parallelism.
    Wide,
    /// Disjoint mutual-recursion rings of `size` members each — large
    /// artificial SCCs.
    Scc {
        /// Members per ring.
        size: usize,
    },
    /// Independent clusters mixing short chains, small rings, fan-in and
    /// leaves — the realistic large-codebase shape (and the scaling
    /// benchmark workload).
    Mixed,
}

/// Shape knobs for [`generate`]. Build with a preset ([`Shape::preset`],
/// [`Shape::mega`]) or the builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    /// Number of top-level functions.
    pub functions: usize,
    /// Call-graph topology.
    pub topology: Topology,
    /// Functions per independent cluster ([`Topology::Mixed`] only).
    pub cluster: usize,
    /// Extra dead allocation sites (cons/pair wrappers) per body, `0..=4`.
    pub alloc_density: u8,
    /// Percent of functions with a provably-local allocation profile.
    pub pct_local: u8,
    /// Percent with a provably-escaping profile (result-spine conses).
    pub pct_escaping: u8,
    // remainder: unknown / data-dependent escape
}

impl Shape {
    /// Named presets: `chain`, `wide`, `scc`, `mixed`, `mega`.
    pub fn preset(name: &str) -> Option<Shape> {
        let base = Shape {
            functions: 64,
            topology: Topology::Mixed,
            cluster: 8,
            alloc_density: 1,
            pct_local: 34,
            pct_escaping: 33,
        };
        match name {
            "chain" => Some(Shape {
                topology: Topology::Chain,
                functions: 48,
                ..base
            }),
            "wide" => Some(Shape {
                topology: Topology::Wide,
                ..base
            }),
            "scc" => Some(Shape {
                topology: Topology::Scc { size: 8 },
                ..base
            }),
            "mixed" => Some(base),
            "mega" => Some(Shape::mega()),
            _ => None,
        }
    }

    /// The fixed scaling-benchmark shape: 2000 functions in independent
    /// mixed clusters of 8.
    pub fn mega() -> Shape {
        Shape {
            functions: 2000,
            topology: Topology::Mixed,
            cluster: 8,
            alloc_density: 2,
            pct_local: 34,
            pct_escaping: 33,
        }
    }

    /// Sets the function count.
    pub fn functions(mut self, n: usize) -> Shape {
        self.functions = n.max(1);
        self
    }

    /// Sets the cluster size (Mixed topology).
    pub fn cluster(mut self, c: usize) -> Shape {
        self.cluster = c.max(2);
        self
    }

    /// Sets the dead-allocation density knob.
    pub fn alloc_density(mut self, d: u8) -> Shape {
        self.alloc_density = d.min(4);
        self
    }
}

/// Parses a CLI shape spec: a preset name optionally followed by
/// `:functions` and topology-specific suffixes — `chain:64`, `wide:200`,
/// `scc:96x12` (96 functions in rings of 12), `mixed:2000`,
/// `mixed:2000/8` (clusters of 8), `mega`.
pub fn parse_shape(spec: &str) -> Result<Shape, String> {
    let (name, rest) = match spec.split_once(':') {
        Some((n, r)) => (n, Some(r)),
        None => (spec, None),
    };
    let mut shape = Shape::preset(name)
        .ok_or_else(|| format!("unknown shape `{name}` (chain|wide|scc|mixed|mega)"))?;
    if let Some(rest) = rest {
        let (count, suffix) = if let Some((c, s)) = rest.split_once('x') {
            (c, Some(('x', s)))
        } else if let Some((c, s)) = rest.split_once('/') {
            (c, Some(('/', s)))
        } else {
            (rest, None)
        };
        let n: usize = count
            .parse()
            .map_err(|_| format!("bad function count `{count}` in shape `{spec}`"))?;
        shape = shape.functions(n);
        match suffix {
            Some(('x', s)) => {
                let size: usize = s
                    .parse()
                    .map_err(|_| format!("bad scc size `{s}` in shape `{spec}`"))?;
                shape.topology = Topology::Scc { size: size.max(2) };
            }
            Some(('/', s)) => {
                let c: usize = s
                    .parse()
                    .map_err(|_| format!("bad cluster size `{s}` in shape `{spec}`"))?;
                shape = shape.cluster(c);
            }
            _ => {}
        }
    }
    Ok(shape)
}

/// What a generated function does with lists — fixes its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `int list -> int list`
    Transformer,
    /// `int list -> int`
    Consumer,
}

/// One generated top-level binding: `name = lambda(l). …`.
#[derive(Debug, Clone)]
pub struct GenBinding {
    /// Binding name (`f0`, `f1`, …).
    pub name: String,
    /// Right-hand side, a self-contained `lambda(l). …` expression.
    pub rhs: String,
    /// The role the body was generated for (mutations preserve it).
    pub role: Role,
    /// Dependencies: indices of other bindings referenced in `rhs`.
    pub deps: Vec<usize>,
    /// Whether the body recurses on itself.
    pub self_rec: bool,
}

/// A generated corpus: bindings plus a scalar program body, assembled
/// into source on demand so single-binding replacements stay cheap.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Seed the corpus was generated from.
    pub seed: u64,
    /// Shape the corpus was generated with.
    pub shape: Shape,
    /// The top-level bindings, in program order.
    pub bindings: Vec<GenBinding>,
    /// The program body (type `int`), exercising a sample of roots.
    pub body: String,
}

/// A single type-preserving binding mutation produced by [`Corpus::mutate`].
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Index of the rewritten binding.
    pub index: usize,
    /// Its name.
    pub name: String,
    /// The replacement right-hand side (same role, different content).
    pub rhs: String,
}

impl Corpus {
    /// Assembles the full program source.
    pub fn source(&self) -> String {
        self.source_with(None)
    }

    /// Assembles source with one binding's RHS replaced (scratch oracle
    /// for incremental re-analysis tests).
    pub fn source_replacing(&self, index: usize, rhs: &str) -> String {
        self.source_with(Some((index, rhs)))
    }

    fn source_with(&self, replace: Option<(usize, &str)>) -> String {
        let mut out = String::with_capacity(self.bindings.len() * 96 + 64);
        out.push_str("letrec ");
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                out.push_str(";\n  ");
            }
            let rhs = match replace {
                Some((j, r)) if j == i => r,
                _ => b.rhs.as_str(),
            };
            let _ = write!(out, "{} = {}", b.name, rhs);
        }
        let _ = write!(out, "\nin {}", self.body);
        out
    }

    /// Produces a deterministic, type- and role-preserving rewrite of one
    /// randomly chosen binding. The replacement is guaranteed to differ
    /// textually from the current RHS.
    pub fn mutate(&self, mutation_seed: u64) -> Mutation {
        let mut rng = Rng::new(self.seed ^ mutation_seed.rotate_left(17) ^ 0xc0de);
        let index = rng.below(self.bindings.len());
        let b = &self.bindings[index];
        // Re-render the same structural template with fresh constants and
        // template choices; loop (bounded) until the text actually changes.
        for attempt in 0..16 {
            let mut sub = Rng::new(rng.next_u64() ^ attempt);
            let rhs = render_body(
                &mut sub,
                b.role,
                index,
                &b.deps,
                b.self_rec,
                &self.bindings,
                self.shape.alloc_density,
            );
            if rhs != b.rhs {
                return Mutation {
                    index,
                    name: b.name.clone(),
                    rhs,
                };
            }
        }
        // Bounded fallback: constant-shift rewrite always differs.
        let rhs = format!(
            "lambda(l). (if (null l) then 0 else car l + {}) ",
            rng.below(1000) + 1
        );
        Mutation {
            index,
            name: b.name.clone(),
            rhs,
        }
    }
}

/// Generates a corpus from a seed and shape. Deterministic: identical
/// inputs yield byte-identical source.
pub fn generate(seed: u64, shape: &Shape) -> Corpus {
    let mut rng = Rng::new(seed ^ CORPUS_SALT);
    let n = shape.functions.max(1);

    // 1. Wire the topology: per-binding dep sets + self-recursion flags
    //    + roles. Dep edges always point to larger indices (callees later
    //    in the program) except inside SCC rings, where the ring closes.
    let mut plan: Vec<(Role, Vec<usize>, bool)> = Vec::with_capacity(n);
    match shape.topology {
        Topology::Chain => {
            for i in 0..n {
                let role = Role::Transformer;
                if i + 1 < n {
                    plan.push((role, vec![i + 1], false));
                } else {
                    plan.push((role, vec![], true)); // leaf recurses
                }
            }
        }
        Topology::Wide => {
            for _ in 0..n {
                plan.push((pick_role(&mut rng, shape), vec![], true));
            }
        }
        Topology::Scc { size } => {
            let size = size.max(2);
            for i in 0..n {
                let ring = i / size;
                let pos = i % size;
                let ring_len = (n - ring * size).min(size);
                if ring_len < 2 {
                    plan.push((Role::Transformer, vec![], true));
                } else {
                    // Ring member calls the next member, wrapping around.
                    let next = ring * size + (pos + 1) % ring_len;
                    plan.push((Role::Transformer, vec![next], false));
                }
            }
        }
        Topology::Mixed => {
            let c = shape.cluster.max(2);
            for i in 0..n {
                let base = (i / c) * c;
                let pos = i - base;
                let len = (n - base).min(c);
                if len >= 3 && pos == 0 {
                    // Head of cluster: 2-ring with the next member.
                    plan.push((Role::Transformer, vec![base + 1], false));
                } else if len >= 3 && pos == 1 {
                    plan.push((Role::Transformer, vec![base], false));
                } else {
                    // Interior: role by profile mix, 0–2 deps on earlier
                    // cluster members, possible self-recursion.
                    let role = pick_role(&mut rng, shape);
                    let mut deps = Vec::new();
                    let picks = rng.below(3);
                    for _ in 0..picks {
                        let d = base + rng.below(pos.max(1));
                        if d < i && !deps.contains(&d) {
                            deps.push(d);
                        }
                    }
                    deps.sort_unstable();
                    plan.push((role, deps, rng.chance(60)));
                }
            }
        }
    }

    // 2. Render bodies.
    let mut bindings: Vec<GenBinding> = Vec::with_capacity(n);
    for (i, (role, deps, self_rec)) in plan.iter().enumerate() {
        bindings.push(GenBinding {
            name: format!("f{i}"),
            rhs: String::new(),
            role: *role,
            deps: deps.clone(),
            self_rec: *self_rec,
        });
    }
    for i in 0..n {
        let (role, deps, self_rec) = (
            bindings[i].role,
            bindings[i].deps.clone(),
            bindings[i].self_rec,
        );
        bindings[i].rhs = render_body(
            &mut rng,
            role,
            i,
            &deps,
            self_rec,
            &bindings,
            shape.alloc_density,
        );
    }

    // 3. Program body: fold a sample of entry points (functions nothing
    //    else depends on) over small literal lists; always type `int`.
    let mut depended: Vec<bool> = vec![false; n];
    for b in &bindings {
        for &d in &b.deps {
            depended[d] = true;
        }
    }
    let mut roots: Vec<usize> = (0..n).filter(|&i| !depended[i]).collect();
    if roots.is_empty() {
        roots.push(0);
    }
    let sample = roots.len().min(6);
    let step = (roots.len() / sample).max(1);
    let mut body = String::from("0");
    for k in 0..sample {
        let i = roots[(k * step) % roots.len()];
        let arg = literal_list(&mut rng);
        let call = format!("{} {}", bindings[i].name, arg);
        match bindings[i].role {
            Role::Consumer => {
                let _ = write!(body, " + {call}");
            }
            Role::Transformer => {
                let _ = write!(body, " + (if (null ({call})) then 0 else car ({call}))");
            }
        }
    }
    Corpus {
        seed,
        shape: shape.clone(),
        bindings,
        body,
    }
}

fn pick_role(rng: &mut Rng, shape: &Shape) -> Role {
    let p = rng.below(100) as u8;
    if p < shape.pct_local {
        Role::Consumer
    } else if p < shape.pct_local.saturating_add(shape.pct_escaping) {
        Role::Transformer
    } else {
        // unknown profile: conditional-escape transformer
        Role::Transformer
    }
}

fn literal_list(rng: &mut Rng) -> String {
    match rng.below(3) {
        0 => format!("[{}, {}]", rng.below(9), rng.below(9)),
        1 => format!("[{}, {}, {}]", rng.below(9), rng.below(9), rng.below(9)),
        _ => format!("[{}]", rng.below(9)),
    }
}

/// An `int`-typed expression built from `car l` (only used under a
/// non-null guard) and dep calls, optionally wrapped in dead allocation
/// sites according to `density`.
fn int_expr(rng: &mut Rng, me: usize, deps: &[usize], all: &[GenBinding], density: u8) -> String {
    let k = rng.below(9) + 1;
    let mut e = match rng.below(4) {
        0 => format!("car l + {k}"),
        1 => format!("car l * {k}"),
        2 => format!("{k} - car l"),
        _ => {
            // fold in a consumer dep if one exists
            match deps.iter().find(|&&d| all[d].role == Role::Consumer) {
                Some(&d) if d != me => format!("car l + {} (cdr l)", all[d].name),
                _ => format!("car l + {k}"),
            }
        }
    };
    for _ in 0..density {
        e = match rng.below(3) {
            // dead cons, immediately deconstructed: provably local site
            0 => format!("car (cons ({e}) [])"),
            // dead pair, either projection
            1 => format!("fst (({e}), {})", rng.below(9)),
            _ => format!("snd ({}, ({e}))", rng.below(9)),
        };
    }
    e
}

/// An `int list`-typed expression for transformer else-branches.
fn list_expr(
    rng: &mut Rng,
    me: usize,
    deps: &[usize],
    self_rec: bool,
    all: &[GenBinding],
) -> String {
    let trans: Vec<usize> = deps
        .iter()
        .copied()
        .filter(|&d| all[d].role == Role::Transformer && d != me)
        .collect();
    let tail: String = if let Some(&d) = trans.first() {
        format!("{} (cdr l)", all[d].name)
    } else if self_rec {
        format!("{} (cdr l)", all[me].name)
    } else {
        match rng.below(2) {
            0 => "cdr l".to_string(),
            _ => "l".to_string(),
        }
    };
    tail
}

fn render_body(
    rng: &mut Rng,
    role: Role,
    me: usize,
    deps: &[usize],
    self_rec: bool,
    all: &[GenBinding],
    density: u8,
) -> String {
    match role {
        Role::Transformer => {
            let head = int_expr(rng, me, deps, all, density);
            let tail = list_expr(rng, me, deps, self_rec, all);
            match rng.below(3) {
                // unknown profile: escape depends on the data
                0 => format!(
                    "lambda(l). if (null l) then l else (if (car l < {}) then l else cons ({head}) ({tail}))",
                    rng.below(9)
                ),
                // escaping with empty base
                1 => format!("lambda(l). if (null l) then [] else cons ({head}) ({tail})"),
                // escaping, parameter reaches the result
                _ => format!("lambda(l). if (null l) then l else cons ({head}) ({tail})"),
            }
        }
        Role::Consumer => {
            let step = int_expr(rng, me, deps, all, density);
            let mut terms = String::new();
            for &d in deps.iter().filter(|&&d| d != me) {
                match all[d].role {
                    Role::Consumer => {
                        let _ = write!(terms, " + {} (cdr l)", all[d].name);
                    }
                    Role::Transformer => {
                        let _ = write!(
                            terms,
                            " + (if (null ({0} (cdr l))) then 0 else car ({0} (cdr l)))",
                            all[d].name
                        );
                    }
                }
            }
            let rec = if self_rec {
                format!(" + {} (cdr l)", all[me].name)
            } else {
                String::new()
            };
            format!(
                "lambda(l). if (null l) then {} else ({step}){terms}{rec}",
                rng.below(4)
            )
        }
    }
}

/// Stable salt so corpus seeds don't collide with other splitmix64
/// users in the workspace ("nml_corp" in ASCII).
const CORPUS_SALT: u64 = 0x6e6d_6c5f_636f_7270;

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<Shape> {
        vec![
            Shape::preset("chain").unwrap().functions(24),
            Shape::preset("wide").unwrap().functions(40),
            Shape::preset("scc").unwrap().functions(32),
            Shape::preset("mixed").unwrap().functions(48),
            Shape::mega().functions(64),
        ]
    }

    #[test]
    fn deterministic_per_seed() {
        for shape in shapes() {
            let a = generate(7, &shape);
            let b = generate(7, &shape);
            assert_eq!(a.source(), b.source());
            let c = generate(8, &shape);
            assert_ne!(a.source(), c.source(), "distinct seeds must differ");
        }
    }

    #[test]
    fn corpora_parse_and_typecheck() {
        for shape in shapes() {
            for seed in 0..8u64 {
                let corpus = generate(seed, &shape);
                let src = corpus.source();
                let program = nml_syntax::parse_program(&src).unwrap_or_else(|e| {
                    panic!("seed {seed} {shape:?}: parse failed: {e:?}\n{src}")
                });
                nml_types::infer_program(&program)
                    .unwrap_or_else(|e| panic!("seed {seed} {shape:?}: inference failed: {e:?}"));
            }
        }
    }

    #[test]
    fn mutation_is_type_preserving_and_local() {
        let shape = Shape::preset("mixed").unwrap().functions(32);
        for seed in 0..8u64 {
            let corpus = generate(seed, &shape);
            let m = corpus.mutate(seed.wrapping_mul(31) + 1);
            assert_ne!(
                m.rhs, corpus.bindings[m.index].rhs,
                "mutation must change text"
            );
            let src = corpus.source_replacing(m.index, &m.rhs);
            let program = nml_syntax::parse_program(&src).expect("mutated corpus parses");
            nml_types::infer_program(&program).expect("mutated corpus typechecks");
            // Only the chosen binding differs.
            let orig = corpus.source();
            let lines_changed = orig
                .lines()
                .zip(src.lines())
                .filter(|(a, b)| a != b)
                .count();
            assert!(lines_changed <= 1, "mutation touched {lines_changed} lines");
        }
    }

    #[test]
    fn shape_spec_parsing() {
        assert_eq!(parse_shape("mega").unwrap(), Shape::mega());
        assert_eq!(parse_shape("mixed:2000").unwrap().functions, 2000);
        assert_eq!(parse_shape("mixed:2000/8").unwrap().cluster, 8);
        match parse_shape("scc:96x12").unwrap().topology {
            Topology::Scc { size } => assert_eq!(size, 12),
            t => panic!("wrong topology {t:?}"),
        }
        assert!(parse_shape("bogus").is_err());
    }
}
