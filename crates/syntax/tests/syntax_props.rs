//! Property tests for the front end: total lexing, and
//! pretty-print/re-parse round-tripping over randomly generated ASTs.

use nml_syntax::ast::{Binding, Const, Expr, ExprKind, NodeId, Prim};
use nml_syntax::{lexer, parse_expr, pretty_expr, Span, Symbol};
use proptest::prelude::*;

// ---- lexer totality -------------------------------------------------------

proptest! {
    /// The lexer never panics: any string lexes to tokens or to an error.
    #[test]
    fn lexer_is_total(src in ".{0,200}") {
        let _ = lexer::lex(&src);
    }

    /// Lexing ASCII-only strings is equally total (denser coverage of the
    /// operator table).
    #[test]
    fn lexer_total_on_ascii_soup(src in "[ -~]{0,200}") {
        let _ = lexer::lex(&src);
    }

    /// Parsing never panics either.
    #[test]
    fn parser_is_total(src in "[ -~]{0,120}") {
        let _ = parse_expr(&src);
    }
}

// ---- pretty-print round trip ---------------------------------------------

fn var_names() -> impl Strategy<Value = Symbol> {
    prop_oneof![
        Just(Symbol::intern("x")),
        Just(Symbol::intern("y")),
        Just(Symbol::intern("zs")),
        Just(Symbol::intern("acc")),
    ]
}

fn const_strategy() -> impl Strategy<Value = Const> {
    prop_oneof![
        // Only non-negative literals: the parser never produces negative
        // Int constants (unary minus desugars to `0 - n`), so they are
        // outside the printable fragment.
        (0i64..100).prop_map(Const::Int),
        any::<bool>().prop_map(Const::Bool),
        Just(Const::Nil),
        prop_oneof![
            Just(Prim::Add),
            Just(Prim::Sub),
            Just(Prim::Mul),
            Just(Prim::Eq),
            Just(Prim::Lt),
            Just(Prim::Cons),
            Just(Prim::Car),
            Just(Prim::Cdr),
            Just(Prim::Null),
        ]
        .prop_map(Const::Prim),
    ]
}

fn mk(kind: ExprKind) -> Expr {
    Expr {
        id: NodeId(0),
        span: Span::DUMMY,
        kind,
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        const_strategy().prop_map(|c| mk(ExprKind::Const(c))),
        var_names().prop_map(|v| mk(ExprKind::Var(v))),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(f, a)| mk(ExprKind::App(Box::new(f), Box::new(a)))),
            (var_names(), inner.clone()).prop_map(|(x, b)| mk(ExprKind::Lambda(x, Box::new(b)))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| mk(ExprKind::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            ))),
            (var_names(), inner.clone(), inner.clone()).prop_map(|(n, b, body)| mk(
                ExprKind::Letrec(
                    vec![Binding {
                        name: n,
                        span: Span::DUMMY,
                        expr: b,
                    }],
                    Box::new(body)
                )
            )),
        ]
    })
}

/// Structural equality ignoring ids and spans.
fn alpha_eq(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Const(x), ExprKind::Const(y)) => x == y,
        (ExprKind::Var(x), ExprKind::Var(y)) => x == y,
        (ExprKind::App(f1, a1), ExprKind::App(f2, a2)) => alpha_eq(f1, f2) && alpha_eq(a1, a2),
        (ExprKind::Lambda(x1, b1), ExprKind::Lambda(x2, b2)) => x1 == x2 && alpha_eq(b1, b2),
        (ExprKind::If(c1, t1, e1), ExprKind::If(c2, t2, e2)) => {
            alpha_eq(c1, c2) && alpha_eq(t1, t2) && alpha_eq(e1, e2)
        }
        (ExprKind::Letrec(bs1, e1), ExprKind::Letrec(bs2, e2)) => {
            bs1.len() == bs2.len()
                && bs1
                    .iter()
                    .zip(bs2)
                    .all(|(x, y)| x.name == y.name && alpha_eq(&x.expr, &y.expr))
                && alpha_eq(e1, e2)
        }
        (ExprKind::Annot(e1, t1), ExprKind::Annot(e2, t2)) => t1 == t2 && alpha_eq(e1, e2),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// pretty ∘ parse is the identity on ASTs (modulo ids/spans): the
    /// printer emits valid concrete syntax with correct precedence.
    #[test]
    fn pretty_print_roundtrips(e in expr_strategy()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        prop_assert!(
            alpha_eq(&e, &reparsed),
            "round trip changed the tree:\n  printed: {}\n  original: {:?}\n  reparsed: {:?}",
            printed, e, reparsed
        );
    }
}
