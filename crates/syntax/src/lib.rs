//! # nml-syntax
//!
//! The front end of the **nml** language from *Escape Analysis on Lists*
//! (Park & Goldberg, PLDI 1992, §3.1): lexer, recursive-descent parser,
//! abstract syntax, pretty-printer, free-variable analysis, and span-based
//! diagnostics.
//!
//! nml is a simple, strict, higher-order functional language:
//!
//! ```text
//! e  ::= c | x | e1 e2 | lambda(x).e
//!      | if e1 then e2 else e3
//!      | letrec x1 = e1; ...; xn = en in e
//! ```
//!
//! with constants `..., -1, 0, 1, ..., true, false, +, -, =, nil, cons,
//! car, cdr` (plus `null` and a few more comparison/arithmetic primitives
//! used by the paper's examples).
//!
//! ## Example
//!
//! ```
//! use nml_syntax::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "letrec append x y = if (null x) then y
//!                          else cons (car x) (append (cdr x) y)
//!      in append [1, 2] [3]",
//! )?;
//! assert_eq!(program.bindings.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod symbol;
pub mod token;
pub mod visit;

pub use ast::{Binding, Const, Expr, ExprKind, NodeId, Prim, Program, TyExpr};
pub use callgraph::{CallGraph, Scc, SccDag};
pub use error::{SyntaxError, SyntaxErrorKind};
pub use parser::{parse_expr, parse_expr_in_scope, parse_program};
pub use pretty::{pretty_expr, pretty_program};
pub use span::{LineCol, SourceMap, Span};
pub use symbol::Symbol;
