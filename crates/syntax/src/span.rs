//! Byte-offset spans and a source map for line/column rendering.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span that points nowhere; used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start {start} exceeds end {end}");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for error rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets back to line/column positions in a single source file.
#[derive(Debug, Clone)]
pub struct SourceMap {
    src: String,
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds a source map over `src`.
    pub fn new(src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap { src, line_starts }
    }

    /// The underlying source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The text covered by `span`, or `""` when out of bounds.
    pub fn snippet(&self, span: Span) -> &str {
        self.src
            .get(span.start as usize..span.end as usize)
            .unwrap_or("")
    }

    /// Line/column of the byte offset `pos`.
    pub fn line_col(&self, pos: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: pos - self.line_starts[line_idx] + 1,
        }
    }

    /// The full text of the (1-based) line `line`, without its newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line - 1) as usize;
        let start = self.line_starts[idx] as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches('\n')
    }

    /// Renders a caret diagnostic for `span` with a one-line `msg`.
    pub fn render(&self, span: Span, msg: &str) -> String {
        let lc = self.line_col(span.start);
        let line = self.line_text(lc.line);
        let caret_len =
            (span.len().max(1) as usize).min(line.len().saturating_sub(lc.col as usize - 1).max(1));
        format!(
            "error: {msg}\n --> {lc}\n  |\n  | {line}\n  | {}{}",
            " ".repeat(lc.col as usize - 1),
            "^".repeat(caret_len),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::DUMMY.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn span_rejects_inverted() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_col_lookup() {
        let sm = SourceMap::new("ab\ncd\n\nefg");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(sm.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(sm.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    fn line_text_and_snippet() {
        let sm = SourceMap::new("let x = 1\nin x");
        assert_eq!(sm.line_text(1), "let x = 1");
        assert_eq!(sm.line_text(2), "in x");
        assert_eq!(sm.snippet(Span::new(4, 5)), "x");
    }

    #[test]
    fn render_contains_caret() {
        let sm = SourceMap::new("foo bar");
        let out = sm.render(Span::new(4, 7), "bad identifier");
        assert!(out.contains("bad identifier"));
        assert!(out.contains("^^^"));
        assert!(out.contains("1:5"));
    }
}
