//! Binding-level call graph and its SCC condensation.
//!
//! The analysis engine no longer solves one whole-program fixpoint.
//! Instead, the top-level `letrec` bindings of a [`Program`] are arranged
//! into a *call graph*: binding `f` depends on binding `g` when `g` occurs
//! free in the right-hand side of `f`. Because nml is higher-order, a free
//! occurrence is exactly a (possible) call or capture — either way `f`'s
//! abstract value cannot be finalized before `g`'s, which is the only fact
//! scheduling needs. The graph is condensed with Tarjan's algorithm into
//! strongly connected components and topologically ordered so that every
//! SCC is solved *after* all of its callees, by a small local fixpoint
//! against their already-finalized summaries.
//!
//! The condensation also carries *wave* numbers: SCCs in the same wave
//! have no dependency path between them and may be solved concurrently.

use crate::ast::Program;
use crate::symbol::Symbol;
use crate::visit::free_vars;
use std::collections::{BTreeMap, BTreeSet};

/// The dependency graph over the top-level bindings of one program.
///
/// Node indices are positions in `Program::bindings`; edges point from a
/// binding to the bindings it references (callee direction).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Binding names, in program order (`names[i]` is node `i`).
    pub names: Vec<Symbol>,
    /// `deps[i]` is the sorted set of node indices that binding `i`
    /// references free in its right-hand side (including `i` itself for a
    /// directly self-recursive binding).
    pub deps: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph of the top-level `letrec` bindings.
    ///
    /// An edge `f → g` is recorded when top-level `g` is free in the body
    /// of `f`. This deliberately includes non-call captures (e.g. passing
    /// `g` as an argument or storing it in a list): any free occurrence can
    /// flow `g`'s abstract value into `f`'s, so it is a scheduling
    /// dependency regardless of whether a syntactic application is visible.
    pub fn build(program: &Program) -> CallGraph {
        let names: Vec<Symbol> = program.bindings.iter().map(|b| b.name).collect();
        let index: BTreeMap<Symbol, usize> =
            names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let deps = program
            .bindings
            .iter()
            .map(|b| {
                let fv = free_vars(&b.expr);
                let mut out: Vec<usize> = fv.iter().filter_map(|v| index.get(v).copied()).collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        CallGraph { names, deps }
    }

    /// Number of bindings (nodes).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the program has no top-level bindings.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Condenses the graph into SCCs scheduled callees-first.
    pub fn condense(&self) -> SccDag {
        SccDag::build(self)
    }
}

/// One strongly connected component of the call graph.
#[derive(Debug, Clone)]
pub struct Scc {
    /// Member binding indices, in program order.
    pub members: Vec<usize>,
    /// SCC ids this component depends on (callees), deduplicated, sorted.
    pub deps: Vec<usize>,
    /// True when the component needs a fixpoint: it has more than one
    /// member, or its single member references itself.
    pub recursive: bool,
    /// Scheduling wave: `0` for leaf SCCs, otherwise one more than the
    /// largest wave among `deps`. SCCs sharing a wave are independent.
    pub wave: usize,
}

/// The condensation of a [`CallGraph`]: SCCs in *reverse topological*
/// (callees-first) order, ready for modular scheduling.
#[derive(Debug, Clone)]
pub struct SccDag {
    /// Components, indexed by SCC id. Ids are already a valid
    /// callees-first topological order: every dependency of `sccs[i]` has
    /// an id `< i` (a guarantee Tarjan's algorithm provides for free).
    pub sccs: Vec<Scc>,
    /// `scc_of[node] = id` of the SCC containing that binding.
    pub scc_of: Vec<usize>,
}

impl SccDag {
    fn build(graph: &CallGraph) -> SccDag {
        let mut t = Tarjan {
            graph,
            index: vec![usize::MAX; graph.len()],
            lowlink: vec![0; graph.len()],
            on_stack: vec![false; graph.len()],
            stack: Vec::new(),
            next_index: 0,
            scc_of: vec![usize::MAX; graph.len()],
            sccs: Vec::new(),
        };
        for v in 0..graph.len() {
            if t.index[v] == usize::MAX {
                t.strongconnect(v);
            }
        }
        let Tarjan {
            scc_of, mut sccs, ..
        } = t;
        // Attach inter-SCC dependency edges and wave numbers. Tarjan emits
        // components callees-first, so every dependency id is smaller and
        // one forward sweep settles the waves.
        for id in 0..sccs.len() {
            let mut deps = BTreeSet::new();
            for &m in &sccs[id].members {
                for &d in &graph.deps[m] {
                    let target = scc_of[d];
                    if target != id {
                        deps.insert(target);
                    }
                }
            }
            let wave = deps.iter().map(|&d| sccs[d].wave + 1).max().unwrap_or(0);
            sccs[id].deps = deps.into_iter().collect();
            sccs[id].wave = wave;
            sccs[id].members.sort_unstable();
        }
        SccDag { sccs, scc_of }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.sccs.len()
    }

    /// True when the DAG has no components.
    pub fn is_empty(&self) -> bool {
        self.sccs.is_empty()
    }

    /// Number of scheduling waves (0 for an empty program).
    pub fn wave_count(&self) -> usize {
        self.sccs.iter().map(|s| s.wave + 1).max().unwrap_or(0)
    }

    /// SCC ids grouped by wave, each group sorted ascending. All SCCs in
    /// one group are mutually independent and depend only on groups that
    /// come earlier.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.wave_count()];
        for (id, scc) in self.sccs.iter().enumerate() {
            out[scc.wave].push(id);
        }
        out
    }

    /// The member names of one SCC, resolved through `graph`.
    pub fn member_names(&self, graph: &CallGraph, id: usize) -> Vec<Symbol> {
        self.sccs[id]
            .members
            .iter()
            .map(|&m| graph.names[m])
            .collect()
    }
}

/// Iterative Tarjan state. The recursion is converted to an explicit stack
/// so adversarially deep dependency chains cannot overflow the call stack
/// (the engine itself is panic-quarantined, but the scheduler must not be).
struct Tarjan<'g> {
    graph: &'g CallGraph,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    scc_of: Vec<usize>,
    sccs: Vec<Scc>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, root: usize) {
        // Each frame is (node, next dependency position to examine).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        self.index[root] = self.next_index;
        self.lowlink[root] = self.next_index;
        self.next_index += 1;
        self.stack.push(root);
        self.on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = self.graph.deps[v].get(*pos) {
                *pos += 1;
                if self.index[w] == usize::MAX {
                    self.index[w] = self.next_index;
                    self.lowlink[w] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(w);
                    self.on_stack[w] = true;
                    frames.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
                if self.lowlink[v] == self.index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("tarjan stack underflow");
                        self.on_stack[w] = false;
                        self.scc_of[w] = self.sccs.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let recursive = members.len() > 1 || self.graph.deps[v].contains(&v);
                    self.sccs.push(Scc {
                        members,
                        deps: Vec::new(),
                        recursive,
                        wave: 0,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::symbol::Symbol;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn names_of(graph: &CallGraph, dag: &SccDag) -> Vec<Vec<String>> {
        (0..dag.len())
            .map(|id| {
                dag.member_names(graph, id)
                    .iter()
                    .map(|s| s.as_str().to_string())
                    .collect()
            })
            .collect()
    }

    /// The partition-sort pipeline from the paper's appendix: `ps` calls
    /// `append` and `split`, which are each self-recursive.
    #[test]
    fn partition_sort_decomposition_and_order() {
        let src = "letrec
            append = lambda(x). lambda(y).
              if (null x) then y else cons (car x) (append (cdr x) y);
            split = lambda(l).
              if (null l) then nil else split (cdr l);
            ps = lambda(l). append (split l) l
          in ps nil";
        let program = parse_program(src).unwrap();
        let graph = CallGraph::build(&program);
        let dag = graph.condense();

        // Three singleton SCCs; ps last (it depends on both others).
        let names = names_of(&graph, &dag);
        assert_eq!(names.len(), 3);
        assert_eq!(*names.last().unwrap(), vec!["ps".to_string()]);
        assert!(names[..2].contains(&vec!["append".to_string()]));
        assert!(names[..2].contains(&vec!["split".to_string()]));

        // append and split are self-loops; ps is not recursive.
        let append_id = dag.scc_of[0];
        let split_id = dag.scc_of[1];
        let ps_id = dag.scc_of[2];
        assert!(dag.sccs[append_id].recursive);
        assert!(dag.sccs[split_id].recursive);
        assert!(!dag.sccs[ps_id].recursive);

        // ps depends on both, and sits in wave 1 while the leaves share
        // wave 0.
        assert_eq!(dag.sccs[ps_id].deps, {
            let mut d = vec![append_id, split_id];
            d.sort_unstable();
            d
        });
        assert_eq!(dag.sccs[append_id].wave, 0);
        assert_eq!(dag.sccs[split_id].wave, 0);
        assert_eq!(dag.sccs[ps_id].wave, 1);
        assert_eq!(dag.waves(), vec![vec![0, 1], vec![2]]);
    }

    /// A mutually recursive pair must collapse into one two-member SCC
    /// scheduled before its caller.
    #[test]
    fn mutual_recursion_is_one_scc() {
        let src = "letrec
            even = lambda(n). if n = 0 then true else odd (n - 1);
            odd = lambda(n). if n = 0 then false else even (n - 1);
            main = lambda(n). even n
          in main 4";
        let program = parse_program(src).unwrap();
        let graph = CallGraph::build(&program);
        let dag = graph.condense();

        assert_eq!(dag.len(), 2);
        let pair = &dag.sccs[0];
        assert_eq!(
            dag.member_names(&graph, 0)
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
            vec!["even", "odd"]
        );
        assert!(pair.recursive);
        assert_eq!(pair.wave, 0);
        let main = &dag.sccs[1];
        assert_eq!(main.deps, vec![0]);
        assert!(!main.recursive);
        assert_eq!(main.wave, 1);
    }

    /// A non-recursive binding that merely *captures* another binding as a
    /// free variable (no syntactic application) still gets an edge: the
    /// captured value flows into the capturer's abstract value.
    #[test]
    fn free_variable_capture_creates_edge() {
        let src = "letrec
            id = lambda(x). x;
            wrap = lambda(y). cons 1 (cons 2 nil);
            pick = lambda(b). if b then id else wrap
          in pick true";
        let program = parse_program(src).unwrap();
        let graph = CallGraph::build(&program);
        let pick = graph.names.iter().position(|n| *n == sym("pick")).unwrap();
        let id = graph.names.iter().position(|n| *n == sym("id")).unwrap();
        let wrap = graph.names.iter().position(|n| *n == sym("wrap")).unwrap();
        assert_eq!(graph.deps[pick], {
            let mut d = vec![id, wrap];
            d.sort_unstable();
            d
        });

        let dag = graph.condense();
        let pick_scc = dag.scc_of[pick];
        assert!(!dag.sccs[pick_scc].recursive);
        assert_eq!(dag.sccs[pick_scc].wave, 1);
    }

    /// Self-loop detection: a singleton SCC is `recursive` exactly when
    /// the binding mentions itself.
    #[test]
    fn self_loop_flag() {
        let src = "letrec
            loop = lambda(x). loop x;
            once = lambda(x). x
          in once 1";
        let program = parse_program(src).unwrap();
        let graph = CallGraph::build(&program);
        let dag = graph.condense();
        let loop_scc = dag.scc_of[0];
        let once_scc = dag.scc_of[1];
        assert!(dag.sccs[loop_scc].recursive);
        assert!(!dag.sccs[once_scc].recursive);
        assert_eq!(dag.sccs[loop_scc].members.len(), 1);
    }

    /// Shadowing: a lambda parameter or inner letrec with the same name as
    /// a top-level binding must NOT create a call edge.
    #[test]
    fn shadowed_names_do_not_create_edges() {
        let src = "letrec
            f = lambda(x). x;
            g = lambda(f). f 1;
            h = lambda(x). letrec f = lambda(y). y in f x
          in g h";
        let program = parse_program(src).unwrap();
        let graph = CallGraph::build(&program);
        let g = graph.names.iter().position(|n| *n == sym("g")).unwrap();
        let h = graph.names.iter().position(|n| *n == sym("h")).unwrap();
        assert!(graph.deps[g].is_empty());
        assert!(graph.deps[h].is_empty());
    }
}
