//! Token kinds produced by the lexer.

use crate::span::Span;
use crate::symbol::Symbol;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Identifier (including primitive names such as `cons`, `car`).
    Ident(Symbol),
    /// Type variable written `'a`.
    TyVar(Symbol),

    /// Keyword `lambda`.
    Lambda,
    /// Keyword `if`.
    If,
    /// Keyword `then`.
    Then,
    /// Keyword `else`.
    Else,
    /// Keyword `letrec`.
    Letrec,
    /// Keyword `let`.
    Let,
    /// Keyword `in`.
    In,
    /// Literal `true`.
    True,
    /// Literal `false`.
    False,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(n) => write!(f, "{n}"),
            Ident(s) => write!(f, "{s}"),
            TyVar(s) => write!(f, "'{s}"),
            Lambda => f.write_str("lambda"),
            If => f.write_str("if"),
            Then => f.write_str("then"),
            Else => f.write_str("else"),
            Letrec => f.write_str("letrec"),
            Let => f.write_str("let"),
            In => f.write_str("in"),
            True => f.write_str("true"),
            False => f.write_str("false"),
            LParen => f.write_str("("),
            RParen => f.write_str(")"),
            LBracket => f.write_str("["),
            RBracket => f.write_str("]"),
            Comma => f.write_str(","),
            Semi => f.write_str(";"),
            Dot => f.write_str("."),
            Colon => f.write_str(":"),
            ColonColon => f.write_str("::"),
            Arrow => f.write_str("->"),
            Eq => f.write_str("="),
            Ne => f.write_str("<>"),
            Lt => f.write_str("<"),
            Le => f.write_str("<="),
            Gt => f.write_str(">"),
            Ge => f.write_str(">="),
            Plus => f.write_str("+"),
            Minus => f.write_str("-"),
            Star => f.write_str("*"),
            Slash => f.write_str("/"),
            Eof => f.write_str("<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
