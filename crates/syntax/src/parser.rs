//! Recursive-descent parser for nml.
//!
//! Operator precedence, loosest to tightest:
//!
//! 1. `lambda`, `if`, `letrec`/`let` (prefix forms, extend to the right)
//! 2. comparisons `= <> < <= > >=` (non-associative)
//! 3. `::` (right-associative, sugar for `cons`)
//! 4. `+` `-` (left-associative)
//! 5. `*` `/` (left-associative)
//! 6. application (left-associative)
//! 7. atoms: literals, identifiers, `[..]` list literals, `( e )`,
//!    `( e : ty )` ascriptions

use crate::ast::{Binding, Const, Expr, ExprKind, NodeId, Prim, Program, TyExpr};
use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};
use std::collections::HashSet;

/// Parses a complete nml program.
///
/// A program is `letrec x1 = e1; ...; xn = en in e` (paper §3.1); a bare
/// expression is also accepted and treated as a program with no bindings.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_program(src: &str) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut body = p.expr()?;
    p.expect_eof()?;
    resolve_consts(&mut body, &mut Vec::new());
    let span = body.span;
    // Hoist a top-level letrec into the program's bindings so that passes
    // can address the paper's `letrec ... in e` program form directly.
    let (bindings, body) = match body.kind {
        ExprKind::Letrec(bindings, inner) => (bindings, *inner),
        _ => (Vec::new(), body),
    };
    Ok(Program {
        bindings,
        body,
        span,
        next_node_id: p.next_id,
    })
}

/// Resolves unbound occurrences of `nil` and the primitive names to their
/// constants, respecting lexical scope: `letrec pair x = ... in pair`
/// refers to the user's `pair`, while a program with no such binding gets
/// the primitive.
fn resolve_consts(e: &mut Expr, bound: &mut Vec<Symbol>) {
    match &mut e.kind {
        ExprKind::Var(x) => {
            if !bound.contains(x) {
                if x.as_str() == "nil" {
                    e.kind = ExprKind::Const(Const::Nil);
                } else if let Some(p) = Prim::from_name(x.as_str()) {
                    e.kind = ExprKind::Const(Const::Prim(p));
                }
            }
        }
        ExprKind::Const(_) => {}
        ExprKind::App(f, a) => {
            resolve_consts(f, bound);
            resolve_consts(a, bound);
        }
        ExprKind::Lambda(x, b) => {
            bound.push(*x);
            resolve_consts(b, bound);
            bound.pop();
        }
        ExprKind::If(c, t, f) => {
            resolve_consts(c, bound);
            resolve_consts(t, bound);
            resolve_consts(f, bound);
        }
        ExprKind::Letrec(bs, b) => {
            let n = bs.len();
            for binding in bs.iter() {
                bound.push(binding.name);
            }
            for binding in bs.iter_mut() {
                resolve_consts(&mut binding.expr, bound);
            }
            resolve_consts(b, bound);
            bound.truncate(bound.len() - n);
        }
        ExprKind::Annot(inner, _) => resolve_consts(inner, bound),
    }
}

/// Parses a single nml expression (useful in tests and the REPL-style
/// driver).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_expr(src: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut e = p.expr()?;
    p.expect_eof()?;
    resolve_consts(&mut e, &mut Vec::new());
    Ok(e)
}

/// Parses a single nml expression that will live under the given names in
/// scope — typically the RHS of a top-level binding being replaced, with
/// `scope` the program's binding names. Unlike [`parse_expr`], occurrences
/// of `nil` or primitive names that are shadowed by `scope` stay variable
/// references instead of resolving to constants.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_expr_in_scope(src: &str, scope: &[Symbol]) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut e = p.expr()?;
    p.expect_eof()?;
    resolve_consts(&mut e, &mut scope.to_vec());
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
        }
    }

    fn peek(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, SyntaxError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> SyntaxError {
        let t = self.peek();
        SyntaxError::new(
            SyntaxErrorKind::UnexpectedToken {
                found: t.kind,
                expected: expected.to_owned(),
            },
            t.span,
        )
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if self.at(TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn node(&mut self, span: Span, kind: ExprKind) -> Expr {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        Expr { id, span, kind }
    }

    fn ident(&mut self, what: &str) -> Result<(Symbol, Span), SyntaxError> {
        match self.peek().kind {
            TokenKind::Ident(s) => {
                let t = self.bump();
                Ok((s, t.span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek().kind {
            TokenKind::Lambda => self.lambda(),
            TokenKind::If => self.if_expr(),
            TokenKind::Letrec | TokenKind::Let => self.letrec(),
            _ => self.comparison(),
        }
    }

    fn lambda(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.expect(TokenKind::Lambda, "`lambda`")?.span;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?.0);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        if params.is_empty() {
            return Err(SyntaxError::new(SyntaxErrorKind::EmptyLambdaParams, start));
        }
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::Dot, "`.`")?;
        let body = self.expr()?;
        let span = start.to(body.span);
        let mut e = body;
        for &p in params.iter().rev() {
            e = self.node(span, ExprKind::Lambda(p, Box::new(e)));
        }
        Ok(e)
    }

    fn if_expr(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.expect(TokenKind::If, "`if`")?.span;
        let cond = self.expr()?;
        self.expect(TokenKind::Then, "`then`")?;
        let then_e = self.expr()?;
        self.expect(TokenKind::Else, "`else`")?;
        let else_e = self.expr()?;
        let span = start.to(else_e.span);
        Ok(self.node(
            span,
            ExprKind::If(Box::new(cond), Box::new(then_e), Box::new(else_e)),
        ))
    }

    fn letrec(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.bump().span; // `letrec` or `let`
        let mut bindings = Vec::new();
        let mut seen: HashSet<Symbol> = HashSet::new();
        loop {
            if self.at(TokenKind::In) {
                break;
            }
            let b = self.binding()?;
            if !seen.insert(b.name) {
                return Err(SyntaxError::new(
                    SyntaxErrorKind::DuplicateBinding(b.name.to_string()),
                    b.span,
                ));
            }
            bindings.push(b);
            if !self.eat(TokenKind::Semi) {
                break;
            }
        }
        if bindings.is_empty() {
            return Err(SyntaxError::new(SyntaxErrorKind::EmptyLetrec, start));
        }
        self.expect(TokenKind::In, "`in`")?;
        let body = self.expr()?;
        let span = start.to(body.span);
        Ok(self.node(span, ExprKind::Letrec(bindings, Box::new(body))))
    }

    /// `name param* = expr`; parameters desugar to curried lambdas.
    fn binding(&mut self) -> Result<Binding, SyntaxError> {
        let (name, name_span) = self.ident("binding name")?;
        let mut params = Vec::new();
        while let TokenKind::Ident(p) = self.peek().kind {
            self.bump();
            params.push(p);
        }
        self.expect(TokenKind::Eq, "`=`")?;
        let body = self.expr()?;
        let span = name_span.to(body.span);
        let mut expr = body;
        for &p in params.iter().rev() {
            expr = self.node(span, ExprKind::Lambda(p, Box::new(expr)));
        }
        Ok(Binding {
            name,
            span: name_span,
            expr,
        })
    }

    fn comparison(&mut self) -> Result<Expr, SyntaxError> {
        let lhs = self.cons_chain()?;
        let prim = match self.peek().kind {
            TokenKind::Eq => Prim::Eq,
            TokenKind::Ne => Prim::Ne,
            TokenKind::Lt => Prim::Lt,
            TokenKind::Le => Prim::Le,
            TokenKind::Gt => Prim::Gt,
            TokenKind::Ge => Prim::Ge,
            _ => return Ok(lhs),
        };
        let op_span = self.bump().span;
        let rhs = self.cons_chain()?;
        Ok(self.binop(prim, op_span, lhs, rhs))
    }

    fn cons_chain(&mut self) -> Result<Expr, SyntaxError> {
        let head = self.additive()?;
        if self.at(TokenKind::ColonColon) {
            let op_span = self.bump().span;
            let tail = self.cons_chain()?; // right-associative
            Ok(self.binop(Prim::Cons, op_span, head, tail))
        } else {
            Ok(head)
        }
    }

    fn additive(&mut self) -> Result<Expr, SyntaxError> {
        // Allow a leading unary minus: `-e` parses as `0 - e`.
        let mut lhs = if self.at(TokenKind::Minus) {
            let op_span = self.bump().span;
            let zero = self.node(op_span, ExprKind::Const(Const::Int(0)));
            let rhs = self.multiplicative()?;
            self.binop(Prim::Sub, op_span, zero, rhs)
        } else {
            self.multiplicative()?
        };
        loop {
            let prim = match self.peek().kind {
                TokenKind::Plus => Prim::Add,
                TokenKind::Minus => Prim::Sub,
                _ => break,
            };
            let op_span = self.bump().span;
            let rhs = self.multiplicative()?;
            lhs = self.binop(prim, op_span, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.application()?;
        loop {
            let prim = match self.peek().kind {
                TokenKind::Star => Prim::Mul,
                TokenKind::Slash => Prim::Div,
                _ => break,
            };
            let op_span = self.bump().span;
            let rhs = self.application()?;
            lhs = self.binop(prim, op_span, lhs, rhs);
        }
        Ok(lhs)
    }

    fn binop(&mut self, prim: Prim, op_span: Span, lhs: Expr, rhs: Expr) -> Expr {
        let span = lhs.span.to(rhs.span);
        let c = self.node(op_span, ExprKind::Const(Const::Prim(prim)));
        let app1 = self.node(span, ExprKind::App(Box::new(c), Box::new(lhs)));
        self.node(span, ExprKind::App(Box::new(app1), Box::new(rhs)))
    }

    fn application(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            let span = e.span.to(arg.span);
            e = self.node(span, ExprKind::App(Box::new(e), Box::new(arg)));
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Int(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::Ident(_)
                | TokenKind::LBracket
                | TokenKind::LParen
        )
    }

    fn atom(&mut self) -> Result<Expr, SyntaxError> {
        let t = self.peek();
        match t.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok(self.node(t.span, ExprKind::Const(Const::Int(n))))
            }
            TokenKind::True => {
                self.bump();
                Ok(self.node(t.span, ExprKind::Const(Const::Bool(true))))
            }
            TokenKind::False => {
                self.bump();
                Ok(self.node(t.span, ExprKind::Const(Const::Bool(false))))
            }
            TokenKind::Ident(s) => {
                self.bump();
                // `nil` and primitive names become constants only if no
                // lexical binding shadows them — decided by the
                // post-parse resolution pass (`resolve_consts`), since
                // the parser cannot see scope.
                Ok(self.node(t.span, ExprKind::Var(s)))
            }
            TokenKind::LBracket => self.list_literal(),
            TokenKind::LParen => {
                let start = self.bump().span;
                // Operator section `(+)`: the primitive as a first-class
                // value (this is also what the pretty-printer emits for a
                // bare infix constant).
                if let Some(p) = section_prim(self.peek().kind) {
                    if self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
                        == TokenKind::RParen
                    {
                        self.bump();
                        let end = self.expect(TokenKind::RParen, "`)`")?.span;
                        return Ok(self.node(start.to(end), ExprKind::Const(Const::Prim(p))));
                    }
                }
                let inner = self.expr()?;
                if self.eat(TokenKind::Colon) {
                    let ty = self.ty()?;
                    let end = self.expect(TokenKind::RParen, "`)`")?.span;
                    let span = start.to(end);
                    Ok(self.node(span, ExprKind::Annot(Box::new(inner), ty)))
                } else if self.eat(TokenKind::Comma) {
                    // Tuple literal `(e1, e2)`, sugar for `pair e1 e2`.
                    // Longer tuples nest rightward: `(a, b, c)` is
                    // `(a, (b, c))`.
                    let mut items = vec![inner];
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RParen, "`)`")?.span;
                    let span = start.to(end);
                    let mut e = items.pop().expect("at least two items");
                    for item in items.into_iter().rev() {
                        let c = self.node(span, ExprKind::Const(Const::Prim(Prim::MkPair)));
                        let app1 = self.node(span, ExprKind::App(Box::new(c), Box::new(item)));
                        e = self.node(span, ExprKind::App(Box::new(app1), Box::new(e)));
                    }
                    Ok(e)
                } else {
                    let end = self.expect(TokenKind::RParen, "`)`")?.span;
                    let mut e = inner;
                    e.span = start.to(end);
                    Ok(e)
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    /// `[e1, e2, ..., en]` desugars to `cons e1 (cons e2 ... nil)`.
    fn list_literal(&mut self) -> Result<Expr, SyntaxError> {
        let start = self.expect(TokenKind::LBracket, "`[`")?.span;
        let mut items = Vec::new();
        if !self.at(TokenKind::RBracket) {
            loop {
                items.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RBracket, "`]`")?.span;
        let span = start.to(end);
        let mut e = self.node(span, ExprKind::Const(Const::Nil));
        for item in items.into_iter().rev() {
            let c = self.node(span, ExprKind::Const(Const::Prim(Prim::Cons)));
            let app1 = self.node(span, ExprKind::App(Box::new(c), Box::new(item)));
            e = self.node(span, ExprKind::App(Box::new(app1), Box::new(e)));
        }
        Ok(e)
    }

    // ---- types ------------------------------------------------------------

    /// `ty := ty-prod ('->' ty)?` where `ty-prod := ty-postfix ('*'
    /// ty-prod)?` and `ty-postfix := atom 'list'*`.
    fn ty(&mut self) -> Result<TyExpr, SyntaxError> {
        let lhs = self.ty_prod()?;
        if self.eat(TokenKind::Arrow) {
            let rhs = self.ty()?; // right-associative
            Ok(TyExpr::Fun(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> Result<TyExpr, SyntaxError> {
        let lhs = self.ty_postfix()?;
        if self.eat(TokenKind::Star) {
            let rhs = self.ty_prod()?; // right-associative
            Ok(TyExpr::Prod(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_postfix(&mut self) -> Result<TyExpr, SyntaxError> {
        let mut t = self.ty_atom()?;
        while let TokenKind::Ident(s) = self.peek().kind {
            if s.as_str() == "list" {
                self.bump();
                t = TyExpr::List(Box::new(t));
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn ty_atom(&mut self) -> Result<TyExpr, SyntaxError> {
        let t = self.peek();
        match t.kind {
            TokenKind::Ident(s) if s.as_str() == "int" => {
                self.bump();
                Ok(TyExpr::Int)
            }
            TokenKind::Ident(s) if s.as_str() == "bool" => {
                self.bump();
                Ok(TyExpr::Bool)
            }
            TokenKind::TyVar(s) => {
                self.bump();
                Ok(TyExpr::Var(s))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.ty()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            _ => Err(self.unexpected("a type")),
        }
    }
}

/// The primitive an operator token denotes in a section `(op)`.
fn section_prim(kind: TokenKind) -> Option<Prim> {
    Some(match kind {
        TokenKind::Plus => Prim::Add,
        TokenKind::Minus => Prim::Sub,
        TokenKind::Star => Prim::Mul,
        TokenKind::Slash => Prim::Div,
        TokenKind::Eq => Prim::Eq,
        TokenKind::Ne => Prim::Ne,
        TokenKind::Lt => Prim::Lt,
        TokenKind::Le => Prim::Le,
        TokenKind::Gt => Prim::Gt,
        TokenKind::Ge => Prim::Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        parse_expr(src).expect("parse ok")
    }

    #[test]
    fn tuple_literals_desugar_to_pair() {
        let e = parse("(1, 2)");
        let (head, args) = e.uncurry_app();
        assert!(matches!(
            head.kind,
            ExprKind::Const(Const::Prim(Prim::MkPair))
        ));
        assert_eq!(args.len(), 2);
        // Triples nest rightward.
        let t = parse("(1, 2, 3)");
        let (_, targs) = t.uncurry_app();
        let (inner_head, _) = targs[1].uncurry_app();
        assert!(matches!(
            inner_head.kind,
            ExprKind::Const(Const::Prim(Prim::MkPair))
        ));
        // fst/snd are primitive constants.
        assert!(matches!(
            parse("fst").kind,
            ExprKind::Const(Const::Prim(Prim::Fst))
        ));
        assert!(matches!(
            parse("snd").kind,
            ExprKind::Const(Const::Prim(Prim::Snd))
        ));
    }

    #[test]
    fn user_bindings_shadow_primitive_names() {
        // `pair` is a primitive, but a letrec binding of the same name
        // must win in its scope.
        let p = parse_program("letrec pair x = x in pair 1").unwrap();
        let (head, _) = p.body.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Var(_)), "user pair is a Var");
        // Outside any binding, `pair` is the primitive.
        assert!(matches!(
            parse("pair").kind,
            ExprKind::Const(Const::Prim(Prim::MkPair))
        ));
        // Lambda parameters shadow too.
        let e = parse("lambda(cons). cons");
        if let ExprKind::Lambda(_, body) = &e.kind {
            assert!(matches!(body.kind, ExprKind::Var(_)));
        } else {
            panic!("expected lambda");
        }
    }

    #[test]
    fn product_types_parse() {
        let e = parse("(nil : (int * bool) list)");
        match &e.kind {
            ExprKind::Annot(_, ty) => assert_eq!(ty.to_string(), "(int * bool) list"),
            other => panic!("expected annot, got {other:?}"),
        }
        let f = parse("(f : int * bool -> int)");
        match &f.kind {
            ExprKind::Annot(_, ty) => assert_eq!(ty.to_string(), "int * bool -> int"),
            other => panic!("expected annot, got {other:?}"),
        }
    }

    #[test]
    fn operator_sections_parse() {
        assert!(matches!(
            parse("(+)").kind,
            ExprKind::Const(Const::Prim(Prim::Add))
        ));
        assert!(matches!(
            parse("(<=)").kind,
            ExprKind::Const(Const::Prim(Prim::Le))
        ));
        // Application of a section.
        let e = parse("f (+) 1");
        let (_, args) = e.uncurry_app();
        assert!(matches!(
            args[0].kind,
            ExprKind::Const(Const::Prim(Prim::Add))
        ));
        // Not confused with parenthesized unary minus.
        let neg = parse("(-5)");
        let (head, _) = neg.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Const(Const::Prim(Prim::Sub))));
    }

    #[test]
    fn parses_application_left_assoc() {
        let e = parse("f x y");
        let (head, args) = e.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Var(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_lambda_multi_param() {
        let e = parse("lambda(x, y). x");
        assert_eq!(e.lambda_arity(), 2);
    }

    #[test]
    fn empty_lambda_params_rejected() {
        assert!(matches!(
            parse_expr("lambda(). 1").unwrap_err().kind,
            SyntaxErrorKind::EmptyLambdaParams
        ));
    }

    #[test]
    fn parses_if() {
        let e = parse("if true then 1 else 2");
        assert!(matches!(e.kind, ExprKind::If(..)));
    }

    #[test]
    fn parses_letrec_with_params() {
        let p = parse_program("letrec id x = x in id 3").unwrap();
        assert_eq!(p.bindings.len(), 1);
        assert_eq!(p.bindings[0].name.as_str(), "id");
        assert_eq!(p.bindings[0].expr.lambda_arity(), 1);
    }

    #[test]
    fn letrec_duplicate_binding_rejected() {
        assert!(matches!(
            parse_program("letrec f = 1; f = 2 in f").unwrap_err().kind,
            SyntaxErrorKind::DuplicateBinding(_)
        ));
    }

    #[test]
    fn empty_letrec_rejected() {
        assert!(matches!(
            parse_expr("letrec in 1").unwrap_err().kind,
            SyntaxErrorKind::EmptyLetrec
        ));
    }

    #[test]
    fn bare_expression_program() {
        let p = parse_program("1 + 2").unwrap();
        assert!(p.bindings.is_empty());
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3  ==  (+ 1 (* 2 3))
        let e = parse("1 + 2 * 3");
        let (head, args) = e.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Const(Const::Prim(Prim::Add))));
        assert!(matches!(args[0].kind, ExprKind::Const(Const::Int(1))));
        let (inner_head, _) = args[1].uncurry_app();
        assert!(matches!(
            inner_head.kind,
            ExprKind::Const(Const::Prim(Prim::Mul))
        ));
    }

    #[test]
    fn comparison_binds_loosest() {
        let e = parse("1 + 2 = 3");
        let (head, _) = e.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Const(Const::Prim(Prim::Eq))));
    }

    #[test]
    fn cons_is_right_associative() {
        // 1 :: 2 :: nil == cons 1 (cons 2 nil)
        let e = parse("1 :: 2 :: nil");
        let (head, args) = e.uncurry_app();
        assert!(matches!(
            head.kind,
            ExprKind::Const(Const::Prim(Prim::Cons))
        ));
        assert!(matches!(args[0].kind, ExprKind::Const(Const::Int(1))));
        let (h2, a2) = args[1].uncurry_app();
        assert!(matches!(h2.kind, ExprKind::Const(Const::Prim(Prim::Cons))));
        assert!(matches!(a2[1].kind, ExprKind::Const(Const::Nil)));
    }

    #[test]
    fn list_literal_desugars_to_cons() {
        let e = parse("[1, 2]");
        let (head, args) = e.uncurry_app();
        assert!(matches!(
            head.kind,
            ExprKind::Const(Const::Prim(Prim::Cons))
        ));
        assert!(matches!(args[0].kind, ExprKind::Const(Const::Int(1))));
        let empty = parse("[]");
        assert!(matches!(empty.kind, ExprKind::Const(Const::Nil)));
    }

    #[test]
    fn primitive_names_are_constants() {
        assert!(matches!(
            parse("cons").kind,
            ExprKind::Const(Const::Prim(Prim::Cons))
        ));
        assert!(matches!(parse("nil").kind, ExprKind::Const(Const::Nil)));
        assert!(matches!(parse("map").kind, ExprKind::Var(_)));
    }

    #[test]
    fn unary_minus_desugars() {
        let e = parse("-5");
        let (head, args) = e.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Const(Const::Prim(Prim::Sub))));
        assert!(matches!(args[0].kind, ExprKind::Const(Const::Int(0))));
        assert!(matches!(args[1].kind, ExprKind::Const(Const::Int(5))));
    }

    #[test]
    fn ascription_parses_types() {
        let e = parse("(nil : int list list)");
        match &e.kind {
            ExprKind::Annot(_, ty) => assert_eq!(ty.to_string(), "int list list"),
            other => panic!("expected annot, got {other:?}"),
        }
    }

    #[test]
    fn ascription_function_types() {
        let e = parse("(f : (int -> int) -> int list)");
        match &e.kind {
            ExprKind::Annot(_, ty) => assert_eq!(ty.to_string(), "(int -> int) -> int list"),
            other => panic!("expected annot, got {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_expr("1 2)").is_err());
    }

    #[test]
    fn node_ids_unique() {
        let p = parse_program("letrec f x = x + 1 in f 2").unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in p.exprs() {
            assert!(seen.insert(e.id), "duplicate node id {:?}", e.id);
        }
    }

    #[test]
    fn paper_appendix_partition_sort_parses() {
        let src = r#"
            letrec
              append x y = if (null x) then y
                           else cons (car x) (append (cdr x) y);
              split p x l h =
                if (null x) then (cons l (cons h nil))
                else if (car x) < p
                     then split p (cdr x) (cons (car x) l) h
                     else split p (cdr x) l (cons (car x) h);
              ps x = if (null x) then nil
                     else append (ps (car (split (car x) (cdr x) nil nil)))
                                 (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
            in ps [5, 2, 7, 1, 3, 4]
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.bindings.len(), 3);
    }
}
