//! Pretty-printing of nml expressions and programs.
//!
//! The printer produces valid nml concrete syntax: `pretty(parse(s))`
//! re-parses to an alpha-identical AST (modulo node ids and spans). It
//! re-sugars infix primitive applications and prints everything else in
//! fully parenthesized prefix form.

use crate::ast::{Binding, Const, Expr, ExprKind, Prim, Program};
use std::fmt::Write;

/// Pretty-prints an expression on one line.
pub fn pretty_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, Prec::Top);
    out
}

/// Pretty-prints a whole program with one binding per line.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    if !p.bindings.is_empty() {
        out.push_str("letrec\n");
        for (i, b) in p.bindings.iter().enumerate() {
            let _ = write!(out, "  {}", binding_text(b));
            if i + 1 < p.bindings.len() {
                out.push(';');
            }
            out.push('\n');
        }
        out.push_str("in ");
    }
    write_expr(&mut out, &p.body, Prec::Top);
    out.push('\n');
    out
}

fn binding_text(b: &Binding) -> String {
    // Re-sugar `f = lambda(x).lambda(y).e` as `f x y = e`.
    let mut params = Vec::new();
    let mut body = &b.expr;
    while let ExprKind::Lambda(x, inner) = &body.kind {
        params.push(*x);
        body = inner;
    }
    let mut s = b.name.to_string();
    for p in &params {
        let _ = write!(s, " {p}");
    }
    s.push_str(" = ");
    write_expr(&mut s, body, Prec::Top);
    s
}

/// Printing precedence levels, mirroring the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Top,
    Compare,
    Cons,
    Add,
    Mul,
    App,
    Atom,
}

fn infix_of(p: Prim) -> Option<(&'static str, Prec)> {
    Some(match p {
        Prim::Eq => ("=", Prec::Compare),
        Prim::Ne => ("<>", Prec::Compare),
        Prim::Lt => ("<", Prec::Compare),
        Prim::Le => ("<=", Prec::Compare),
        Prim::Gt => (">", Prec::Compare),
        Prim::Ge => (">=", Prec::Compare),
        Prim::Add => ("+", Prec::Add),
        Prim::Sub => ("-", Prec::Add),
        Prim::Mul => ("*", Prec::Mul),
        Prim::Div => ("/", Prec::Mul),
        _ => return None,
    })
}

fn write_expr(out: &mut String, e: &Expr, min: Prec) {
    let prec = expr_prec(e);
    let need_parens = prec < min;
    if need_parens {
        out.push('(');
    }
    match &e.kind {
        ExprKind::Const(c) => {
            // A bare infix primitive prints as its section form `( + )`,
            // which re-parses to the same constant. The inner spaces are
            // load-bearing for `( * )`: `(*` would open a block comment.
            if let Const::Prim(p) = c {
                if infix_of(*p).is_some() {
                    let _ = write!(out, "( {p} )");
                    if need_parens {
                        out.push(')');
                    }
                    return;
                }
            }
            let _ = write!(out, "{c}");
        }
        ExprKind::Var(x) => {
            let _ = write!(out, "{x}");
        }
        ExprKind::App(..) => {
            let (head, args) = e.uncurry_app();
            if let ExprKind::Const(Const::Prim(p)) = head.kind {
                // Saturated `pair a b` re-sugars to the tuple literal.
                if p == Prim::MkPair && args.len() == 2 {
                    out.push('(');
                    write_expr(out, args[0], Prec::Top);
                    out.push_str(", ");
                    write_expr(out, args[1], Prec::Top);
                    out.push(')');
                    if need_parens {
                        out.push(')');
                    }
                    return;
                }
                if let Some((op, opp)) = infix_of(p) {
                    if args.len() == 2 {
                        // Left operand at op level, right one tighter, so
                        // left-associative chains print without parens and
                        // non-associative comparisons parenthesize nesting.
                        let (lmin, rmin) = match opp {
                            Prec::Add | Prec::Mul => (opp, next(opp)),
                            _ => (next(opp), next(opp)),
                        };
                        write_expr(out, args[0], lmin);
                        let _ = write!(out, " {op} ");
                        write_expr(out, args[1], rmin);
                        if need_parens {
                            out.push(')');
                        }
                        return;
                    }
                }
            }
            write_expr(out, head, Prec::App);
            for a in args {
                out.push(' ');
                write_expr(out, a, Prec::Atom);
            }
        }
        ExprKind::Lambda(x, body) => {
            let _ = write!(out, "lambda({x}). ");
            write_expr(out, body, Prec::Top);
        }
        ExprKind::If(c, t, f) => {
            out.push_str("if ");
            write_expr(out, c, Prec::Top);
            out.push_str(" then ");
            write_expr(out, t, Prec::Top);
            out.push_str(" else ");
            write_expr(out, f, Prec::Top);
        }
        ExprKind::Letrec(bs, body) => {
            out.push_str("letrec ");
            for (i, b) in bs.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                out.push_str(&binding_text(b));
            }
            out.push_str(" in ");
            write_expr(out, body, Prec::Top);
        }
        ExprKind::Annot(inner, ty) => {
            out.push('(');
            write_expr(out, inner, Prec::Top);
            let _ = write!(out, " : {ty})");
        }
    }
    if need_parens {
        out.push(')');
    }
}

fn next(p: Prec) -> Prec {
    match p {
        Prec::Top => Prec::Compare,
        Prec::Compare => Prec::Cons,
        Prec::Cons => Prec::Add,
        Prec::Add => Prec::Mul,
        Prec::Mul => Prec::App,
        Prec::App | Prec::Atom => Prec::Atom,
    }
}

fn expr_prec(e: &Expr) -> Prec {
    match &e.kind {
        ExprKind::Const(_) | ExprKind::Var(_) | ExprKind::Annot(..) => Prec::Atom,
        ExprKind::App(..) => {
            let (head, args) = e.uncurry_app();
            if let ExprKind::Const(Const::Prim(p)) = head.kind {
                if p == Prim::MkPair && args.len() == 2 {
                    return Prec::Atom; // prints as a parenthesized tuple
                }
                if let Some((_, opp)) = infix_of(p) {
                    if args.len() == 2 {
                        return opp;
                    }
                }
            }
            Prec::App
        }
        ExprKind::Lambda(..) | ExprKind::If(..) | ExprKind::Letrec(..) => Prec::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Structural equality ignoring node ids and spans.
    fn alpha_eq(a: &Expr, b: &Expr) -> bool {
        use ExprKind::*;
        match (&a.kind, &b.kind) {
            (Const(x), Const(y)) => x == y,
            (Var(x), Var(y)) => x == y,
            (App(f1, a1), App(f2, a2)) => alpha_eq(f1, f2) && alpha_eq(a1, a2),
            (Lambda(x1, b1), Lambda(x2, b2)) => x1 == x2 && alpha_eq(b1, b2),
            (If(c1, t1, e1), If(c2, t2, e2)) => {
                alpha_eq(c1, c2) && alpha_eq(t1, t2) && alpha_eq(e1, e2)
            }
            (Letrec(bs1, e1), Letrec(bs2, e2)) => {
                bs1.len() == bs2.len()
                    && bs1
                        .iter()
                        .zip(bs2)
                        .all(|(x, y)| x.name == y.name && alpha_eq(&x.expr, &y.expr))
                    && alpha_eq(e1, e2)
            }
            (Annot(e1, t1), Annot(e2, t2)) => t1 == t2 && alpha_eq(e1, e2),
            _ => false,
        }
    }

    fn roundtrips(src: &str) {
        let e1 = parse_expr(src).expect("first parse");
        let printed = pretty_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        assert!(
            alpha_eq(&e1, &e2),
            "roundtrip mismatch:\n  src: {src}\n  out: {printed}"
        );
    }

    #[test]
    fn roundtrip_basics() {
        roundtrips("1 + 2 * 3");
        roundtrips("(1 + 2) * 3");
        roundtrips("f x y");
        roundtrips("f (g x) y");
        roundtrips("lambda(x). x + 1");
        roundtrips("if x = 1 then 2 else 3");
        roundtrips("1 :: 2 :: nil");
        roundtrips("cons 1 nil");
        roundtrips("[1, 2, 3]");
        roundtrips("letrec f x = f x in f 1");
        roundtrips("car (cdr [1, 2])");
        roundtrips("(nil : int list)");
        roundtrips("1 - 2 - 3");
        roundtrips("f (lambda(x). x)");
    }

    #[test]
    fn program_printing_resugars_params() {
        let p = parse_program("letrec add x y = x + y in add 1 2").unwrap();
        let printed = pretty_program(&p);
        assert!(printed.contains("add x y = x + y"), "got: {printed}");
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p2.bindings.len(), 1);
    }

    #[test]
    fn nested_comparison_parenthesized() {
        roundtrips("(1 = 2) = false");
    }

    #[test]
    fn partial_infix_prints_prefix() {
        // A partially applied `+` must print as an application, not infix.
        let e = parse_expr("f (cons 1)").unwrap();
        let s = pretty_expr(&e);
        assert!(s.contains("cons 1"), "got {s}");
        roundtrips("f (cons 1)");
    }
}
