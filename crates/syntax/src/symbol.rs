//! Interned identifiers.
//!
//! Identifiers are interned in a process-wide table so that [`Symbol`] is a
//! cheap, `Copy`, hashable handle usable as a map key throughout the
//! pipeline (type environments, abstract environments, runtime frames).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// Two symbols are equal iff the identifiers they intern are equal. The
/// ordering is by intern index (creation order), which is deterministic for
/// a fixed sequence of interning calls but is *not* lexicographic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = i.table.get(name) {
            return Symbol(id);
        }
        let id = i.names.len() as u32;
        // Leaking is intentional: the interner lives for the whole process
        // and makes `as_str` possible without a lock-guarded lifetime.
        let stat: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(stat);
        i.table.insert(stat, id);
        Symbol(id)
    }

    /// The symbol for `name` if it has already been interned, without
    /// interning on a miss. The table is append-only and process-wide,
    /// so a long-running server probing client-supplied names must use
    /// this instead of [`Symbol::intern`] to avoid unbounded growth.
    pub fn lookup(name: &str) -> Option<Symbol> {
        let i = interner().lock().expect("symbol interner poisoned");
        i.table.get(name).copied().map(Symbol)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("symbol interner poisoned");
        i.names[self.0 as usize]
    }

    /// A fresh symbol guaranteed distinct from any previously interned
    /// identifier, derived from `base` (used by monomorphization and the
    /// optimizer to mangle names).
    pub fn fresh(base: &str) -> Symbol {
        let mut n = 0u32;
        loop {
            let candidate = format!("{base}%{n}");
            let mut i = interner().lock().expect("symbol interner poisoned");
            if !i.table.contains_key(candidate.as_str()) {
                let id = i.names.len() as u32;
                let stat: &'static str = Box::leak(candidate.into_boxed_str());
                i.names.push(stat);
                i.table.insert(stat, id);
                return Symbol(id);
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("append");
        let b = Symbol::intern("append");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "append");
    }

    #[test]
    fn lookup_never_interns() {
        assert_eq!(
            Symbol::lookup("lookup-miss-stays-a-miss%nope"),
            None,
            "a miss must not intern"
        );
        assert_eq!(
            Symbol::lookup("lookup-miss-stays-a-miss%nope"),
            None,
            "still a miss on the second probe"
        );
        let s = Symbol::intern("lookup-hit");
        assert_eq!(Symbol::lookup("lookup-hit"), Some(s));
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn fresh_never_collides() {
        let a = Symbol::intern("f%0");
        let b = Symbol::fresh("f");
        assert_ne!(a, b);
        let c = Symbol::fresh("f");
        assert_ne!(b, c);
        assert!(b.as_str().starts_with("f%"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Symbol::intern("cons").to_string(), "cons");
    }
}
