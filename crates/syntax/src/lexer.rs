//! The nml lexer.
//!
//! Supports `--` line comments and nested `(* ... *)` block comments.

use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::span::Span;
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token stream terminated by a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`SyntaxError`] on unterminated block comments, malformed
/// integer literals, stray characters, and malformed type variables.
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start as u32, self.pos as u32)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }

    fn error(&self, kind: SyntaxErrorKind, start: usize) -> SyntaxError {
        SyntaxError::new(kind, self.span_from(start))
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' if self.peek2() == Some(b'-') => self.line_comment(),
                b'(' if self.peek2() == Some(b'*') => self.block_comment(start)?,
                b'0'..=b'9' => self.number(start)?,
                b'\'' => self.ty_var(start)?,
                _ if is_ident_start(b) => self.ident(start),
                _ => self.punct(start)?,
            }
        }
        let end = self.pos;
        self.push(TokenKind::Eof, end);
        Ok(self.tokens)
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self, start: usize) -> Result<(), SyntaxError> {
        // Consume "(*"; block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some(b'('), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b')')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    return Err(self.error(SyntaxErrorKind::UnterminatedComment, start));
                }
            }
        }
        Ok(())
    }

    fn number(&mut self, start: usize) -> Result<(), SyntaxError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let n: i64 = text
            .parse()
            .map_err(|_| self.error(SyntaxErrorKind::IntOutOfRange, start))?;
        self.push(TokenKind::Int(n), start);
        Ok(())
    }

    fn ty_var(&mut self, start: usize) -> Result<(), SyntaxError> {
        self.bump(); // consume '\''
        let name_start = self.pos;
        while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
            self.bump();
        }
        if self.pos == name_start {
            return Err(self.error(SyntaxErrorKind::EmptyTypeVariable, start));
        }
        let sym = Symbol::intern(&self.src[name_start..self.pos]);
        self.push(TokenKind::TyVar(sym), start);
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let kind = match text {
            "lambda" => TokenKind::Lambda,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "letrec" => TokenKind::Letrec,
            "let" => TokenKind::Let,
            "in" => TokenKind::In,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            _ => TokenKind::Ident(Symbol::intern(text)),
        };
        self.push(kind, start);
    }

    fn punct(&mut self, start: usize) -> Result<(), SyntaxError> {
        let b = self.bump().expect("punct called at end of input");
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'=' => TokenKind::Eq,
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b':' => {
                if self.peek() == Some(b':') {
                    self.bump();
                    TokenKind::ColonColon
                } else {
                    TokenKind::Colon
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Le
                }
                Some(b'>') => {
                    self.bump();
                    TokenKind::Ne
                }
                _ => TokenKind::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(self.error(SyntaxErrorKind::UnexpectedChar(other as char), start));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("letrec f x = x in f"),
            vec![
                Letrec,
                Ident(Symbol::intern("f")),
                Ident(Symbol::intern("x")),
                Eq,
                Ident(Symbol::intern("x")),
                In,
                Ident(Symbol::intern("f")),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 1234567890"),
            vec![Int(0), Int(42), Int(1234567890), Eof]
        );
    }

    #[test]
    fn rejects_overflowing_number() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::IntOutOfRange));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("-> :: <= >= <> < > = : ."),
            vec![Arrow, ColonColon, Le, Ge, Ne, Lt, Gt, Eq, Colon, Dot, Eof]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(kinds("1-2"), vec![Int(1), Minus, Int(2), Eof]);
        assert_eq!(
            kinds("a->b"),
            vec![Ident("a".into()), Arrow, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(kinds("1 -- comment\n2"), vec![Int(1), Int(2), Eof]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(kinds("1 (* a (* b *) c *) 2"), vec![Int(1), Int(2), Eof]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("(* oops").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnterminatedComment));
    }

    #[test]
    fn type_variables() {
        assert_eq!(
            kinds("'a 'foo"),
            vec![TyVar("a".into()), TyVar("foo".into()), Eof]
        );
        assert!(lex("' ").is_err());
    }

    #[test]
    fn stray_character_errors() {
        let err = lex("a ? b").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedChar('?')));
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn true_false_keywords() {
        assert_eq!(
            kinds("true false trueish"),
            vec![True, False, Ident("trueish".into()), Eof]
        );
    }
}
