//! AST traversal utilities: free variables and expression walking.

use crate::ast::{Expr, ExprKind};
use crate::symbol::Symbol;
use std::collections::BTreeSet;

/// The set of free identifiers of `e`.
///
/// Primitive constants (`cons`, `car`, ...) and literals are not
/// identifiers, so they never appear. The result is a `BTreeSet` for
/// deterministic iteration order.
pub fn free_vars(e: &Expr) -> BTreeSet<Symbol> {
    let mut free = BTreeSet::new();
    let mut bound = Vec::new();
    go(e, &mut bound, &mut free);
    free
}

fn go(e: &Expr, bound: &mut Vec<Symbol>, free: &mut BTreeSet<Symbol>) {
    match &e.kind {
        ExprKind::Const(_) => {}
        ExprKind::Var(x) => {
            if !bound.contains(x) {
                free.insert(*x);
            }
        }
        ExprKind::App(f, a) => {
            go(f, bound, free);
            go(a, bound, free);
        }
        ExprKind::Lambda(x, body) => {
            bound.push(*x);
            go(body, bound, free);
            bound.pop();
        }
        ExprKind::If(c, t, f) => {
            go(c, bound, free);
            go(t, bound, free);
            go(f, bound, free);
        }
        ExprKind::Letrec(bs, body) => {
            let n = bs.len();
            for b in bs {
                bound.push(b.name);
            }
            for b in bs {
                go(&b.expr, bound, free);
            }
            go(body, bound, free);
            bound.truncate(bound.len() - n);
        }
        ExprKind::Annot(inner, _) => go(inner, bound, free),
    }
}

/// Calls `f` on every node of `e`, pre-order.
pub fn walk_exprs<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Const(_) | ExprKind::Var(_) => {}
        ExprKind::App(fun, arg) => {
            walk_exprs(fun, f);
            walk_exprs(arg, f);
        }
        ExprKind::Lambda(_, body) => walk_exprs(body, f),
        ExprKind::If(c, t, el) => {
            walk_exprs(c, f);
            walk_exprs(t, f);
            walk_exprs(el, f);
        }
        ExprKind::Letrec(bs, body) => {
            for b in bs {
                walk_exprs(&b.expr, f);
            }
            walk_exprs(body, f);
        }
        ExprKind::Annot(inner, _) => walk_exprs(inner, f),
    }
}

/// Shifts every node id of `e` (pre-order, in place) by `offset` and
/// returns one past the largest resulting id.
///
/// Used when grafting a freshly parsed expression (whose ids start at 0)
/// into an existing [`Program`](crate::ast::Program): offsetting by the
/// program's `next_node_id` keeps all ids unique, and the return value is
/// the program's new `next_node_id`. Ids are never reused, so per-node
/// side tables keyed by the old subtree's ids simply go stale instead of
/// aliasing.
pub fn offset_node_ids(e: &mut Expr, offset: u32) -> u32 {
    let mut max_plus_one = 0;
    shift(e, offset, &mut max_plus_one);
    max_plus_one
}

fn shift(e: &mut Expr, offset: u32, max_plus_one: &mut u32) {
    e.id = crate::ast::NodeId(e.id.0 + offset);
    *max_plus_one = (*max_plus_one).max(e.id.0 + 1);
    match &mut e.kind {
        ExprKind::Const(_) | ExprKind::Var(_) => {}
        ExprKind::App(f, a) => {
            shift(f, offset, max_plus_one);
            shift(a, offset, max_plus_one);
        }
        ExprKind::Lambda(_, body) => shift(body, offset, max_plus_one),
        ExprKind::If(c, t, el) => {
            shift(c, offset, max_plus_one);
            shift(t, offset, max_plus_one);
            shift(el, offset, max_plus_one);
        }
        ExprKind::Letrec(bs, body) => {
            for b in bs {
                shift(&mut b.expr, offset, max_plus_one);
            }
            shift(body, offset, max_plus_one);
        }
        ExprKind::Annot(inner, _) => shift(inner, offset, max_plus_one),
    }
}

/// Counts the occurrences of the variable `x` in `e`, respecting shadowing.
pub fn count_occurrences(e: &Expr, x: Symbol) -> usize {
    match &e.kind {
        ExprKind::Const(_) => 0,
        ExprKind::Var(y) => usize::from(*y == x),
        ExprKind::App(f, a) => count_occurrences(f, x) + count_occurrences(a, x),
        ExprKind::Lambda(y, body) => {
            if *y == x {
                0
            } else {
                count_occurrences(body, x)
            }
        }
        ExprKind::If(c, t, f) => {
            count_occurrences(c, x) + count_occurrences(t, x) + count_occurrences(f, x)
        }
        ExprKind::Letrec(bs, body) => {
            if bs.iter().any(|b| b.name == x) {
                0
            } else {
                bs.iter()
                    .map(|b| count_occurrences(&b.expr, x))
                    .sum::<usize>()
                    + count_occurrences(body, x)
            }
        }
        ExprKind::Annot(inner, _) => count_occurrences(inner, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn fv(src: &str) -> Vec<String> {
        free_vars(&parse_expr(src).unwrap())
            .into_iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn lambda_binds() {
        assert_eq!(fv("lambda(x). x y"), vec!["y"]);
    }

    #[test]
    fn letrec_binds_recursively() {
        assert_eq!(fv("letrec f = g; g = f in f"), vec!["g"; 0]);
        assert_eq!(fv("letrec f = h in f"), vec!["h"]);
    }

    #[test]
    fn primitives_are_not_free() {
        assert_eq!(fv("cons x nil"), vec!["x"]);
    }

    #[test]
    fn shadowing_respected() {
        assert_eq!(fv("lambda(x). letrec x = 1 in x"), Vec::<String>::new());
    }

    #[test]
    fn occurrence_counting() {
        let e = parse_expr("x + (lambda(x). x) 1 + x").unwrap();
        assert_eq!(count_occurrences(&e, crate::symbol::Symbol::intern("x")), 2);
    }

    #[test]
    fn walk_visits_all() {
        let e = parse_expr("if a then b else c").unwrap();
        let mut n = 0;
        walk_exprs(&e, &mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
