//! The abstract syntax of nml.
//!
//! The concrete grammar (paper §3.1):
//!
//! ```text
//! e  ::= c | x | e1 e2 | lambda(x).e
//!      | if e1 then e2 else e3
//!      | letrec x1 = e1; ...; xn = en in e
//! pr ::= letrec x1 = e1; ...; xn = en in e
//! ```
//!
//! Surface sugar handled by the parser and represented here post-desugaring:
//! multi-parameter lambdas and `f x1 .. xn = e` bindings (curried lambdas),
//! infix arithmetic/comparison (application of primitive constants), list
//! literals `[a, b, c]` and infix `::` (chains of `cons`), and `let` (a
//! non-recursive `letrec`, which is equivalent because nml bindings are
//! values and name shadowing is resolved before analysis).
//!
//! Every expression node carries a unique [`NodeId`]; later passes attach
//! types and `car^s` spine annotations in side tables keyed by id.

use crate::span::Span;
use crate::symbol::Symbol;
use std::fmt;

/// A unique identifier for an expression node within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Primitive functions of nml (the function-valued constants of `Con`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prim {
    /// Integer addition `+ : int -> int -> int`.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (partial: division by zero is a runtime error).
    Div,
    /// Integer equality `= : int -> int -> bool`.
    Eq,
    /// Integer disequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// `cons : 'a -> 'a list -> 'a list`.
    Cons,
    /// `car : 'a list -> 'a`. Annotated as `car^s` by type inference.
    Car,
    /// `cdr : 'a list -> 'a list`.
    Cdr,
    /// `null : 'a list -> bool`.
    Null,
    /// `pair : 'a -> 'b -> 'a * 'b` — the tuple extension the paper
    /// sketches in §1 ("tuples, trees, etc."). `(a, b)` is sugar.
    MkPair,
    /// `fst : 'a * 'b -> 'a`.
    Fst,
    /// `snd : 'a * 'b -> 'b`.
    Snd,
}

impl Prim {
    /// Number of arguments the primitive takes before returning a
    /// non-function value.
    pub fn arity(self) -> usize {
        match self {
            Prim::Car | Prim::Cdr | Prim::Null | Prim::Fst | Prim::Snd => 1,
            _ => 2,
        }
    }

    /// Whether applying the primitive allocates a fresh cons cell
    /// (interpreters poll the GC before these, with the operands still
    /// rooted).
    pub fn allocates(self) -> bool {
        matches!(self, Prim::Cons | Prim::MkPair)
    }

    /// The primitive for an identifier, if that identifier names one.
    pub fn from_name(name: &str) -> Option<Prim> {
        Some(match name {
            "cons" => Prim::Cons,
            "car" => Prim::Car,
            "cdr" => Prim::Cdr,
            "null" => Prim::Null,
            "pair" => Prim::MkPair,
            "fst" => Prim::Fst,
            "snd" => Prim::Snd,
            _ => return None,
        })
    }

    /// The surface name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Add => "+",
            Prim::Sub => "-",
            Prim::Mul => "*",
            Prim::Div => "/",
            Prim::Eq => "=",
            Prim::Ne => "<>",
            Prim::Lt => "<",
            Prim::Le => "<=",
            Prim::Gt => ">",
            Prim::Ge => ">=",
            Prim::Cons => "cons",
            Prim::Car => "car",
            Prim::Cdr => "cdr",
            Prim::Null => "null",
            Prim::MkPair => "pair",
            Prim::Fst => "fst",
            Prim::Snd => "snd",
        }
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Non-function constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The empty list.
    Nil,
    /// A primitive function constant.
    Prim(Prim),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(n) => write!(f, "{n}"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Nil => f.write_str("nil"),
            Const::Prim(p) => write!(f, "{p}"),
        }
    }
}

/// Surface type expressions, used in optional ascriptions `(e : ty)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TyExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `'a`
    Var(Symbol),
    /// `ty list`
    List(Box<TyExpr>),
    /// `ty * ty` (right-associative)
    Prod(Box<TyExpr>, Box<TyExpr>),
    /// `ty -> ty`
    Fun(Box<TyExpr>, Box<TyExpr>),
}

impl fmt::Display for TyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TyExpr::Int => f.write_str("int"),
            TyExpr::Bool => f.write_str("bool"),
            TyExpr::Var(s) => write!(f, "'{s}"),
            TyExpr::List(t) => match **t {
                TyExpr::Fun(..) | TyExpr::Prod(..) => write!(f, "({t}) list"),
                _ => write!(f, "{t} list"),
            },
            TyExpr::Prod(a, b) => {
                match **a {
                    TyExpr::Fun(..) | TyExpr::Prod(..) => write!(f, "({a})")?,
                    _ => write!(f, "{a}")?,
                }
                f.write_str(" * ")?;
                match **b {
                    TyExpr::Fun(..) => write!(f, "({b})"),
                    _ => write!(f, "{b}"),
                }
            }
            TyExpr::Fun(a, b) => match **a {
                TyExpr::Fun(..) => write!(f, "({a}) -> {b}"),
                _ => write!(f, "{a} -> {b}"),
            },
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique id within the program.
    pub id: NodeId,
    /// Source span (dummy for synthesized nodes).
    pub span: Span,
    /// The expression proper.
    pub kind: ExprKind,
}

/// Expression forms after desugaring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Constant.
    Const(Const),
    /// Variable reference.
    Var(Symbol),
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// `lambda(x). e`
    Lambda(Symbol, Box<Expr>),
    /// `if e1 then e2 else e3`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `letrec x1 = e1; ...; xn = en in e`
    Letrec(Vec<Binding>, Box<Expr>),
    /// Type ascription `(e : ty)`; erased after type inference.
    Annot(Box<Expr>, TyExpr),
}

/// One binding of a `letrec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Bound name.
    pub name: Symbol,
    /// Span of the name.
    pub span: Span,
    /// Bound expression (parameters already folded into lambdas).
    pub expr: Expr,
}

/// A whole program: `letrec x1 = e1; ...; xn = en in e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Top-level recursive bindings.
    pub bindings: Vec<Binding>,
    /// The program body.
    pub body: Expr,
    /// Span of the whole program.
    pub span: Span,
    /// One past the largest [`NodeId`] in use; passes that synthesize nodes
    /// allocate from here.
    pub next_node_id: u32,
}

impl Program {
    /// Allocates a fresh node id for synthesized expressions.
    pub fn fresh_node_id(&mut self) -> NodeId {
        let id = NodeId(self.next_node_id);
        self.next_node_id += 1;
        id
    }

    /// Looks up a top-level binding by name.
    pub fn binding(&self, name: Symbol) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.name == name)
    }

    /// Iterates over every expression node in the program (bindings then
    /// body), pre-order.
    pub fn exprs(&self) -> impl Iterator<Item = &Expr> {
        let mut out = Vec::new();
        for b in &self.bindings {
            collect(&b.expr, &mut out);
        }
        collect(&self.body, &mut out);
        out.into_iter()
    }
}

fn collect<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    out.push(e);
    match &e.kind {
        ExprKind::Const(_) | ExprKind::Var(_) => {}
        ExprKind::App(f, a) => {
            collect(f, out);
            collect(a, out);
        }
        ExprKind::Lambda(_, b) => collect(b, out),
        ExprKind::If(c, t, f) => {
            collect(c, out);
            collect(t, out);
            collect(f, out);
        }
        ExprKind::Letrec(bs, body) => {
            for b in bs {
                collect(&b.expr, out);
            }
            collect(body, out);
        }
        ExprKind::Annot(inner, _) => collect(inner, out),
    }
}

impl Expr {
    /// The number of curried parameters if this is a (possibly nested)
    /// lambda, e.g. `lambda(x).lambda(y).e` has 2.
    pub fn lambda_arity(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let ExprKind::Lambda(_, body) = &cur.kind {
            n += 1;
            cur = body;
        }
        n
    }

    /// Unfolds a curried application `f a1 a2 .. an` into `(f, [a1..an])`.
    pub fn uncurry_app(&self) -> (&Expr, Vec<&Expr>) {
        let mut args = Vec::new();
        let mut cur = self;
        while let ExprKind::App(f, a) = &cur.kind {
            args.push(a.as_ref());
            cur = f;
        }
        args.reverse();
        (cur, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32, kind: ExprKind) -> Expr {
        Expr {
            id: NodeId(id),
            span: Span::DUMMY,
            kind,
        }
    }

    #[test]
    fn prim_arities() {
        assert_eq!(Prim::Cons.arity(), 2);
        assert_eq!(Prim::Car.arity(), 1);
        assert_eq!(Prim::Add.arity(), 2);
        assert_eq!(Prim::Null.arity(), 1);
    }

    #[test]
    fn prim_from_name_roundtrip() {
        for p in [Prim::Cons, Prim::Car, Prim::Cdr, Prim::Null] {
            assert_eq!(Prim::from_name(p.name()), Some(p));
        }
        assert_eq!(Prim::from_name("map"), None);
    }

    #[test]
    fn lambda_arity_counts_nesting() {
        let body = e(0, ExprKind::Var(Symbol::intern("x")));
        let l1 = e(1, ExprKind::Lambda(Symbol::intern("y"), Box::new(body)));
        let l2 = e(2, ExprKind::Lambda(Symbol::intern("x"), Box::new(l1)));
        assert_eq!(l2.lambda_arity(), 2);
    }

    #[test]
    fn uncurry_app_orders_args() {
        let f = e(0, ExprKind::Var(Symbol::intern("f")));
        let a = e(1, ExprKind::Const(Const::Int(1)));
        let b = e(2, ExprKind::Const(Const::Int(2)));
        let app1 = e(3, ExprKind::App(Box::new(f), Box::new(a)));
        let app2 = e(4, ExprKind::App(Box::new(app1), Box::new(b)));
        let (head, args) = app2.uncurry_app();
        assert!(matches!(head.kind, ExprKind::Var(_)));
        assert_eq!(args.len(), 2);
        assert!(matches!(args[0].kind, ExprKind::Const(Const::Int(1))));
        assert!(matches!(args[1].kind, ExprKind::Const(Const::Int(2))));
    }

    #[test]
    fn ty_expr_display() {
        let t = TyExpr::Fun(
            Box::new(TyExpr::List(Box::new(TyExpr::Int))),
            Box::new(TyExpr::List(Box::new(TyExpr::List(Box::new(TyExpr::Int))))),
        );
        assert_eq!(t.to_string(), "int list -> int list list");
        let hof = TyExpr::Fun(
            Box::new(TyExpr::Fun(Box::new(TyExpr::Int), Box::new(TyExpr::Int))),
            Box::new(TyExpr::Int),
        );
        assert_eq!(hof.to_string(), "(int -> int) -> int");
        let fl = TyExpr::List(Box::new(TyExpr::Fun(
            Box::new(TyExpr::Int),
            Box::new(TyExpr::Bool),
        )));
        assert_eq!(fl.to_string(), "(int -> bool) list");
    }
}
