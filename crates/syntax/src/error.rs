//! Syntax errors (lexing and parsing).

use crate::span::{SourceMap, Span};
use crate::token::TokenKind;
use std::fmt;

/// The specific failure encountered while lexing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxErrorKind {
    /// A block comment reached end of input without `*)`.
    UnterminatedComment,
    /// An integer literal does not fit in `i64`.
    IntOutOfRange,
    /// A `'` was not followed by a type-variable name.
    EmptyTypeVariable,
    /// A character that cannot begin any token.
    UnexpectedChar(char),
    /// The parser found `found` where one of `expected` was required.
    UnexpectedToken {
        /// What was found.
        found: TokenKind,
        /// Human description of what was expected.
        expected: String,
    },
    /// A `letrec` with no bindings.
    EmptyLetrec,
    /// The same name is bound twice in one `letrec`.
    DuplicateBinding(String),
    /// A lambda with no parameters, e.g. `lambda().e`.
    EmptyLambdaParams,
}

impl fmt::Display for SyntaxErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxErrorKind::UnterminatedComment => f.write_str("unterminated block comment"),
            SyntaxErrorKind::IntOutOfRange => f.write_str("integer literal out of range for i64"),
            SyntaxErrorKind::EmptyTypeVariable => {
                f.write_str("expected type variable name after `'`")
            }
            SyntaxErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            SyntaxErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            SyntaxErrorKind::EmptyLetrec => f.write_str("letrec must bind at least one name"),
            SyntaxErrorKind::DuplicateBinding(n) => {
                write!(f, "name `{n}` is bound more than once in this letrec")
            }
            SyntaxErrorKind::EmptyLambdaParams => {
                f.write_str("lambda requires at least one parameter")
            }
        }
    }
}

/// A lexing or parsing error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// What went wrong.
    pub kind: SyntaxErrorKind,
    /// Where it went wrong.
    pub span: Span,
}

impl SyntaxError {
    /// Creates an error.
    pub fn new(kind: SyntaxErrorKind, span: Span) -> Self {
        SyntaxError { kind, span }
    }

    /// Renders the error with a source snippet and caret.
    pub fn render(&self, map: &SourceMap) -> String {
        map.render(self.span, &self.kind.to_string())
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl std::error::Error for SyntaxError {}
