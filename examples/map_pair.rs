//! The paper's introduction example: `map pair [[1,2],[3,4],[5,6]]`.
//!
//! Demonstrates the three properties the paper derives (§1):
//!
//! 1. the top spine of `pair`'s parameter does not escape `pair`;
//! 2. the top spine of `map`'s list parameter does not escape `map`
//!    (elements escape only to the extent the unknown `f` lets them);
//! 3. in this particular call, the top **two** spines of the literal do
//!    not escape (local escape test),
//!
//! and then performs the optimization the paper proposes: stack-allocating
//! the literal's spines so they vanish — without GC — when `map` returns.
//!
//! ```sh
//! cargo run --example map_pair
//! ```

use nml_escape_analysis::escape::{local_escape, Engine};
use nml_escape_analysis::pipeline::run;
use nml_escape_analysis::syntax::parse_program;
use nml_escape_analysis::types::infer_and_monomorphize;

const SRC: &str = "letrec
  pair x = cons (car x) (cons (car (cdr x)) nil);
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l))
in map pair [[1,2],[3,4],[5,6]]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The local test is call-site specific: run on the monomorphized
    // program so `map`'s car^s annotations match this call's types.
    let parsed = parse_program(SRC)?;
    let mono = infer_and_monomorphize(&parsed)?;
    let mut engine = Engine::new(&mono.program, &mono.info);

    // Global tests (properties 1 and 2).
    println!("=== global escape tests ===");
    for b in &mono.program.bindings {
        let summary = nml_escape_analysis::escape::global_escape(&mut engine, b.name)?;
        print!("{summary}");
    }

    // Local test on the actual call (property 3).
    println!("=== local escape test on (map pair [[1,2],[3,4],[5,6]]) ===");
    let local = local_escape(&mut engine, &mono.program.body)?;
    print!("{local}");
    println!(
        "argument 2: top {} of {} spines do not escape this call",
        local.retained_spines(1),
        local.spines[1]
    );
    assert_eq!(local.retained_spines(1), 2, "the paper's property 3");

    // The optimization: allocate the literal's spines on the stack. The
    // local-test-driven plan (on the monomorphized program) licenses
    // BOTH spines — all 9 literal cells vanish when the call returns.
    println!("\n=== stack allocation of the literal (local plan) ===");
    let baseline = run(&nml_escape_analysis::pipeline::compile(SRC)?.ir)?;
    let compiled = nml_escape_analysis::pipeline::compile_with_local_stack_alloc(SRC)?;
    println!("{}", compiled.ir.body);
    let optimized = run(&compiled.ir)?;

    assert_eq!(baseline.result, optimized.result);
    println!("result (both): {}", optimized.result);
    println!(
        "baseline : {} heap allocs, {} stack allocs",
        baseline.stats.heap_allocs, baseline.stats.stack_allocs
    );
    println!(
        "optimized: {} heap allocs, {} stack allocs ({} freed at call return)",
        optimized.stats.heap_allocs, optimized.stats.stack_allocs, optimized.stats.stack_freed
    );
    Ok(())
}
