//! The paper's naive-reverse example (§A.3.2): `REV` → `REV'`.
//!
//! Naive reverse is the classic quadratic cons-churner: reversing a list
//! of length n allocates O(n²) cells through repeated `append`. The
//! escape analysis licenses rewriting both `append` and `rev` to reuse
//! their (unshared) argument spines in place — after which reversal
//! allocates **zero** new spine cells.
//!
//! ```sh
//! cargo run --example inplace_reverse
//! ```

use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::opt::{lower_program, reuse_variant, ReuseOptions};
use nml_escape_analysis::runtime::Interp;
use nml_escape_analysis::syntax::Symbol;

const SRC: &str = "letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = analyze_source(SRC)?;
    let rev = analysis.summary("rev").expect("rev analyzed");
    println!(
        "G(rev, 1) = {} -> the top spine of l never escapes rev",
        rev.param(0).verdict
    );

    let mut ir = lower_program(&analysis.program, &analysis.info);
    let append_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )?;
    let rev_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("rev"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )?;
    println!("\nREV'    = {}", ir.func(rev_r).expect("generated").body);
    println!("APPEND' = {}", ir.func(append_r).expect("generated").body);

    println!(
        "\n{:>6} {:>16} {:>16} {:>12}",
        "n", "rev allocs", "rev' allocs", "rev' reuses"
    );
    for n in [50u64, 100, 200, 400] {
        let input: Vec<i64> = (0..n as i64).collect();
        let mut row = Vec::new();
        for func in [Symbol::intern("rev"), rev_r] {
            let mut interp = Interp::new(&ir)?;
            let l = interp.make_int_list(&input);
            let before = interp.heap.stats.heap_allocs;
            let result = interp.call(func, vec![l])?;
            let out = interp.read_int_list(result)?;
            let expect: Vec<i64> = (0..n as i64).rev().collect();
            assert_eq!(out, expect, "reversal must be correct");
            row.push((
                interp.heap.stats.heap_allocs - before,
                interp.heap.stats.dcons_reuses,
            ));
        }
        println!("{n:>6} {:>16} {:>16} {:>12}", row[0].0, row[1].0, row[1].1);
    }
    println!("\nrev allocates O(n²) cells; rev' allocates none and reuses O(n²) in place.");
    Ok(())
}
