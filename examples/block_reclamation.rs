//! Block allocation/reclamation (§A.3.3): `PS (create_list i)`.
//!
//! The list built by `create_list` cannot live in `PS`'s activation
//! record — that record does not exist yet. But its spine does not escape
//! `PS`, so it can be built inside a *block* ("local heap") returned to
//! the free list in one splice when `PS` finishes — no mark–sweep
//! traversal of those cells, ever.
//!
//! ```sh
//! cargo run --example block_reclamation
//! ```

use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::opt::{block_call, lower_program};
use nml_escape_analysis::pipeline::run_with;
use nml_escape_analysis::runtime::{HeapConfig, InterpConfig};
use nml_escape_analysis::syntax::Symbol;

fn program(n: u32) -> String {
    format!(
        "letrec
           append x y = if (null x) then y
                        else cons (car x) (append (cdr x) y);
           split p x l h =
             if (null x) then (cons l (cons h nil))
             else if (car x) < p
                  then split p (cdr x) (cons (car x) l) h
                  else split p (cdr x) l (cons (car x) h);
           ps x = if (null x) then nil
                  else append (ps (car (split (car x) (cdr x) nil nil)))
                              (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))));
           create_list n = if n = 0 then nil
                           else cons ((n * 7919) / 13) (create_list (n - 1))
         in ps (create_list {n})"
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small GC threshold so collection work is visible at these sizes.
    let config = InterpConfig {
        heap: HeapConfig {
            gc_threshold: 512,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        ..Default::default()
    };

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "n", "GC work (base)", "GC work (blk)", "blk cells", "splices"
    );
    for n in [200u32, 400, 800, 1600] {
        let src = program(n);
        let analysis = analyze_source(&src)?;
        let baseline_ir = lower_program(&analysis.program, &analysis.info);
        let base = run_with(&baseline_ir, config.clone())?;

        let mut blk_ir = baseline_ir.clone();
        block_call(
            &mut blk_ir,
            &analysis,
            Symbol::intern("ps"),
            Symbol::intern("create_list"),
        )?;
        let blk = run_with(&blk_ir, config.clone())?;

        assert_eq!(base.result, blk.result, "block mode preserves results");
        println!(
            "{n:>6} {:>14} {:>14} {:>14} {:>14}",
            base.stats.reclamation_work(),
            blk.stats.reclamation_work(),
            blk.stats.block_freed,
            blk.stats.block_frees,
        );
    }
    println!("\nThe input spine is reclaimed by block splices instead of being traced by GC.");
    Ok(())
}
