//! Compiler-style optimization reports over the whole workload corpus:
//! what the escape analysis licenses, program by program.
//!
//! ```sh
//! cargo run --example escape_report
//! ```

use nml_escape_analysis::corpus;
use nml_escape_analysis::report::OptimizationReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut exploitable = 0usize;
    let mut total = 0usize;
    for w in corpus::ALL {
        println!("### {} ###", w.name);
        let report = OptimizationReport::for_source(w.source)?;
        println!("{report}\n");
        exploitable += report.exploitable_functions();
        total += report.functions.len();
    }
    println!("{}", "=".repeat(64));
    println!("corpus total: {exploitable} of {total} functions have exploitable escape properties");
    Ok(())
}
