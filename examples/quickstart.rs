//! Quickstart: analyze a program, read the verdicts, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::pipeline::{compile, run};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "letrec append x y = if (null x) then y
                                   else cons (car x) (append (cdr x) y)
               in append [1, 2] [3, 4]";

    // 1. Escape analysis: for each parameter of each function, how many
    //    spines may be returned by the function?
    let analysis = analyze_source(src)?;
    println!("escape analysis:\n{analysis}");

    let append = analysis.summary("append").expect("append analyzed");
    println!(
        "G(append, 1) = {}  ->  the top {} spine(s) of x never escape",
        append.param(0).verdict,
        append.param(0).retained_spines(),
    );
    println!(
        "G(append, 2) = {}  ->  y escapes entirely",
        append.param(1).verdict
    );

    // 2. Sharing analysis (Theorem 2): the non-escaping top spines make
    //    the result's top spine unshared.
    println!(
        "unshared top spines of any (append a b) result: {}",
        analysis
            .unshared_result_spines("append")
            .expect("append returns a list")
    );

    // 3. Run the program on the instrumented runtime.
    let compiled = compile(src)?;
    let outcome = run(&compiled.ir)?;
    println!("\nresult: {}", outcome.result);
    println!("--- runtime statistics ---\n{}", outcome.stats);
    Ok(())
}
