//! The paper's Appendix A, end to end: partition sort.
//!
//! Reproduces every concrete value in §A.1 (global escape results for
//! `APPEND`, `SPLIT`, `PS`), the §A.2 sharing conclusions, and the §A.3.2
//! in-place-reuse transformation (`APPEND'`, `PS'`), then measures the
//! transformation's effect on the instrumented runtime.
//!
//! ```sh
//! cargo run --example partition_sort
//! ```

use nml_escape_analysis::escape::{analyze_source, unshared_from_summary};
use nml_escape_analysis::opt::{lower_program, reuse_variant, ReuseOptions};
use nml_escape_analysis::runtime::{Interp, Value};
use nml_escape_analysis::syntax::Symbol;

const PS_SRC: &str = r#"
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h =
    if (null x) then (cons l (cons h nil))
    else if (car x) < p
         then split p (cdr x) (cons (car x) l) h
         else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
in ps [5, 2, 7, 1, 3, 4]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- A.1: global escape analysis -----------------------------------
    let analysis = analyze_source(PS_SRC)?;
    println!("=== Appendix A.1: global escape results ===");
    for f in ["append", "split", "ps"] {
        let s = analysis.summary(f).expect("in corpus");
        for p in &s.params {
            println!("G({f}, {}) = {}", p.index + 1, p.verdict);
        }
    }

    // ---- A.2: sharing ----------------------------------------------------
    println!("\n=== Appendix A.2: sharing from escape information ===");
    for f in ["ps", "split"] {
        let s = analysis.summary(f).expect("in corpus");
        println!(
            "top {} spine(s) of any ({f} ...) result are unshared",
            unshared_from_summary(s)
        );
    }

    // ---- A.3.2: in-place reuse -------------------------------------------
    println!("\n=== Appendix A.3.2: in-place reuse ===");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    let append_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )?;
    let ps_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("ps"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )?;
    println!("APPEND' = {}", ir.func(append_r).expect("generated").body);
    println!("PS''    = {}", ir.func(ps_r).expect("generated").body);

    // ---- measure ----------------------------------------------------------
    println!("\n=== effect on the instrumented runtime (n = 300) ===");
    let input: Vec<i64> = (0..300).map(|i| (i * 7919) % 1000).collect();

    let mut outputs: Vec<Vec<i64>> = Vec::new();
    for (label, func) in [("baseline ps", Symbol::intern("ps")), ("reuse ps''", ps_r)] {
        let mut interp = Interp::new(&ir)?;
        let l = interp.make_int_list(&input);
        let baseline_allocs = interp.heap.stats.heap_allocs;
        let result = interp.call(func, vec![l])?;
        outputs.push(interp.read_int_list(result)?);
        let stats = interp.heap.stats;
        println!(
            "{label:12}  spine allocs: {:6}   dcons reuses: {:6}",
            stats.heap_allocs - baseline_allocs,
            stats.dcons_reuses
        );
    }
    let (sorted_baseline, sorted_reuse) = (&outputs[0], &outputs[1]);
    assert_eq!(
        sorted_baseline, sorted_reuse,
        "optimization preserves results"
    );
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(*sorted_baseline, expect, "partition sort sorts");
    println!("\nresults identical and correctly sorted — reuse is observably safe");

    // Note: ps'' still conses in `split` (which builds fresh l/h lists);
    // the DCONS savings show up in append's spine work, exactly as the
    // paper describes.
    let _ = Value::Nil;
    Ok(())
}
