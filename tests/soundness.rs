//! Soundness: the abstract escape analysis over-approximates the exact
//! (dynamic) escape semantics.
//!
//! For every corpus function with first-order parameters, and for
//! randomly generated list programs, we tag the interesting argument's
//! spine cells (the paper's exact semantics, realized operationally),
//! run the call, scan the result, and check
//! `dynamic escaping spines ≤ static escaping spines` — with the static
//! `⟨0,0⟩` verdict requiring that *nothing* tagged reaches the result.

use nml_escape_analysis::corpus;
use nml_escape_analysis::escape::{analyze_source, Analysis};
use nml_escape_analysis::opt::lower_program;
use nml_escape_analysis::runtime::{dynamic_escape, Interp, RuntimeError, Value};
use nml_escape_analysis::syntax::Symbol;
use nml_escape_analysis::types::Ty;
use proptest::prelude::*;

/// Builds an input value of (first-order) type `ty`; returns `None` for
/// function types.
fn gen_value<'p>(interp: &mut Interp<'p>, ty: &Ty, seed: u64) -> Option<Value<'p>> {
    match ty {
        Ty::Int => Some(Value::Int((seed % 17) as i64 - 8)),
        Ty::Bool => Some(Value::Bool(seed.is_multiple_of(2))),
        Ty::List(elem) => {
            let len = (seed % 5) as usize + 1;
            let mut items = Vec::with_capacity(len);
            for i in 0..len {
                items.push(gen_value(
                    interp,
                    elem,
                    seed.wrapping_mul(31).wrapping_add(i as u64),
                )?);
            }
            Some(interp.make_list(items))
        }
        Ty::Prod(a, b) => {
            let x = gen_value(interp, a, seed.wrapping_mul(7))?;
            let y = gen_value(interp, b, seed.wrapping_mul(13))?;
            Some(interp.make_tuple(x, y))
        }
        Ty::Fun(..) | Ty::Var(_) => None,
    }
}

/// Checks every list parameter of `func` in `analysis` dynamically, over
/// a few random input shapes.
fn check_function(analysis: &Analysis, func: &str) {
    let name = Symbol::intern(func);
    let Some(summary) = analysis.summaries.get(&name) else {
        return;
    };
    if summary.param_tys.iter().any(|t| matches!(t, Ty::Fun(..))) {
        return; // function-valued inputs are exercised elsewhere
    }
    let ir = lower_program(&analysis.program, &analysis.info);
    for (i, pty) in summary.param_tys.iter().enumerate() {
        let spines = pty.spines();
        if spines == 0 {
            continue; // only spine cells can be tagged
        }
        for seed in 1..6u64 {
            let mut interp = Interp::new(&ir).expect("interp init");
            let mut args = Vec::new();
            let mut ok = true;
            for (j, t) in summary.param_tys.iter().enumerate() {
                match gen_value(&mut interp, t, seed.wrapping_mul(97).wrapping_add(j as u64)) {
                    Some(v) => args.push(v),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let dynamic = match dynamic_escape(&mut interp, name, args, i, spines) {
                Ok(d) => d,
                // Partial functions (car of nil on short inputs) are fine.
                Err(RuntimeError::EmptyList { .. }) => continue,
                Err(other) => panic!("{func} failed at runtime: {other}"),
            };
            let static_k = summary.param(i).escaping_spines();
            let dynamic_k = dynamic.escaping_spines();
            assert!(
                dynamic_k <= static_k,
                "{func} param {i}: dynamic {dynamic_k} > static {static_k} (seed {seed})"
            );
            if !summary.param(i).escapes() {
                assert_eq!(
                    dynamic.escaped_level, None,
                    "{func} param {i}: static <0,0> but something escaped dynamically"
                );
            }
        }
    }
}

#[test]
fn corpus_is_dynamically_sound() {
    for w in corpus::ALL {
        let analysis = analyze_source(w.source)
            .unwrap_or_else(|e| panic!("{} failed to analyze: {e}", w.name));
        for f in w.functions {
            check_function(&analysis, f);
        }
    }
}

// ---- randomized programs -------------------------------------------------

/// A random, total, first-order list expression over variables `a`, `b`.
#[derive(Debug, Clone)]
enum ListExpr {
    A,
    B,
    Nil,
    SafeCdr(Box<ListExpr>),
    ConsHead(Box<ListExpr>, Box<ListExpr>),
    Append(Box<ListExpr>, Box<ListExpr>),
    Rev(Box<ListExpr>),
    IfNull(Box<ListExpr>, Box<ListExpr>, Box<ListExpr>),
}

impl ListExpr {
    fn render(&self) -> String {
        match self {
            ListExpr::A => "a".into(),
            ListExpr::B => "b".into(),
            ListExpr::Nil => "nil".into(),
            ListExpr::SafeCdr(e) => format!("(safecdr {})", e.render()),
            ListExpr::ConsHead(e, t) => {
                format!("(cons (safecar {}) {})", e.render(), t.render())
            }
            ListExpr::Append(x, y) => format!("(append {} {})", x.render(), y.render()),
            ListExpr::Rev(e) => format!("(rev {})", e.render()),
            ListExpr::IfNull(c, t, f) => format!(
                "(if (null {}) then {} else {})",
                c.render(),
                t.render(),
                f.render()
            ),
        }
    }
}

fn list_expr_strategy() -> impl Strategy<Value = ListExpr> {
    let leaf = prop_oneof![Just(ListExpr::A), Just(ListExpr::B), Just(ListExpr::Nil),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| ListExpr::SafeCdr(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ListExpr::ConsHead(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ListExpr::Append(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| ListExpr::Rev(Box::new(e))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| ListExpr::IfNull(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn program_for(expr: &ListExpr) -> String {
    format!(
        "letrec
           safecar l = if (null l) then 0 else car l;
           safecdr l = if (null l) then nil else cdr l;
           append x y = if (null x) then y
                        else cons (car x) (append (cdr x) y);
           rev l = if (null l) then nil
                   else append (rev (cdr l)) (cons (car l) nil);
           subject a b = {}
         in subject [1] [2]",
        expr.render()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two-list functions: the abstract verdicts for both
    /// parameters must dominate the measured dynamic escape on random
    /// inputs.
    #[test]
    fn random_list_programs_are_sound(
        expr in list_expr_strategy(),
        la in proptest::collection::vec(-20i64..20, 0..6),
        lb in proptest::collection::vec(-20i64..20, 0..6),
    ) {
        let src = program_for(&expr);
        let analysis = analyze_source(&src).expect("generated program analyzes");
        let summary = analysis.summaries[&Symbol::intern("subject")].clone();
        let ir = lower_program(&analysis.program, &analysis.info);
        for i in 0..2usize {
            let mut interp = Interp::new(&ir).expect("interp");
            let a = interp.make_int_list(&la);
            let b = interp.make_int_list(&lb);
            let d = dynamic_escape(&mut interp, Symbol::intern("subject"), vec![a, b], i, 1)
                .expect("total by construction");
            // The analysis ran at the simplest instance (a parameter
            // unused as a list defaults to `int`, 0 spines); the dynamic
            // test always passes 1-spine lists. Transfer the verdict to
            // the 1-spine instance via polymorphic invariance (Thm 1).
            let at_one_spine = nml_escape_analysis::escape::transfer_verdict(
                summary.param(i).verdict,
                summary.param(i).spines,
                1,
            );
            let static_k = if at_one_spine.escapes() {
                at_one_spine.spines()
            } else {
                0
            };
            prop_assert!(
                d.escaping_spines() <= static_k,
                "param {}: dynamic {} > static {} for {}",
                i, d.escaping_spines(), static_k, expr.render()
            );
            if !summary.param(i).escapes() {
                prop_assert!(d.escaped_level.is_none());
            }
        }
    }
}
