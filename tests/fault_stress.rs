//! The fault-tolerance acceptance harness: 256 generated nml programs are
//! pushed through the *full* pipeline under a randomly tight analysis
//! [`Budget`] and an active runtime [`FaultPlan`], asserting that
//!
//! 1. nothing panics — the front end is total (budget exhaustion degrades
//!    affected functions to the worst-case summary instead of failing);
//! 2. every (possibly degraded) verdict over-approximates the reference
//!    interpreter's exact escape tables (soundness of degradation);
//! 3. the optimized program executed under injected faults (forced GCs,
//!    allocation retreats, region denials) is observationally equal to
//!    the unoptimized program on a fault-free interpreter.

use nml_escape_analysis::escape::{
    reference_global, tabulate_program, Budget, PolyMode, ScheduleOptions,
};
use nml_escape_analysis::pipeline::{
    compile_governed, compile_optimized_governed, run_checked, run_with, CheckedOptions,
};
use nml_escape_analysis::runtime::{FaultPlan, FaultRate, HeapConfig, InterpConfig};
use proptest::prelude::*;

/// Every generated program shares this first-order prelude; the strategy
/// below only varies the main expression. First-order keeps the reference
/// tabulation applicable, so soundness can be checked on every case.
const PRELUDE: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  revon l a = if (null l) then a else revon (cdr l) (cons (car l) a);
  take n l = if n = 0 then nil
             else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  drop n l = if n = 0 then l
             else if (null l) then nil
             else drop (n - 1) (cdr l);
  copy l = if (null l) then nil else cons (car l) (copy (cdr l));
  incall l = if (null l) then nil else cons ((car l) + 1) (incall (cdr l));
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l);
  len l = if (null l) then 0 else 1 + len (cdr l)
in ";

/// A literal int-list or a `mklist` call — the leaves of the expression
/// tree.
fn leaf() -> BoxedStrategy<String> {
    prop_oneof![
        proptest::collection::vec(0i64..9, 0..5).prop_map(|xs| {
            let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }),
        (0u32..6).prop_map(|k| format!("(mklist {k})")),
    ]
    .boxed()
}

/// A random list-valued expression: literals and `mklist` calls wrapped
/// in up to three levels of list transformers.
fn list_expr() -> BoxedStrategy<String> {
    leaf().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("(copy {e})")),
            inner.clone().prop_map(|e| format!("(incall {e})")),
            inner.clone().prop_map(|e| format!("(revon {e} nil)")),
            (0u32..4, inner.clone()).prop_map(|(k, e)| format!("(take {k} {e})")),
            (0u32..4, inner.clone()).prop_map(|(k, e)| format!("(drop {k} {e})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("(append {a} {b})")),
        ]
    })
}

/// A whole program: the prelude plus a main expression that either
/// returns the list or folds it to a scalar.
fn program() -> BoxedStrategy<String> {
    prop_oneof![
        list_expr().prop_map(|e| format!("{PRELUDE}{e}")),
        list_expr().prop_map(|e| format!("{PRELUDE}(sum {e})")),
        list_expr().prop_map(|e| format!("{PRELUDE}(len {e})")),
    ]
    .boxed()
}

/// Unlimited, pass-starved, or node-starved — roughly two thirds of the
/// cases analyze under a budget tight enough to degrade something.
fn budget() -> BoxedStrategy<Budget> {
    prop_oneof![
        Just(Budget::unlimited()),
        (1u32..5).prop_map(|p| Budget::tight(p, u64::MAX, None)),
        (4u64..64).prop_map(|n| Budget::tight(u32::MAX, n, None)),
    ]
    .boxed()
}

/// An active, seeded fault plan. Heap-capacity exhaustion is exercised
/// separately (it makes the program fail, by design, so it cannot be part
/// of an observational-equality check).
fn fault_plan() -> BoxedStrategy<FaultPlan> {
    fn rate(i: u8) -> FaultRate {
        match i {
            0 => FaultRate::OFF,
            1 => FaultRate::new(1, 8),
            2 => FaultRate::new(1, 3),
            _ => FaultRate::new(1, 1),
        }
    }
    (any::<u64>(), 0u8..4, 0u8..4, 0u8..4)
        .prop_map(|(seed, retreat, deny, gc)| {
            FaultPlan::new(seed)
                .with_alloc_retreats(rate(retreat))
                .with_region_denials(rate(deny))
                .with_forced_gc(rate(gc))
                .with_forced_gc_at(vec![1, 5, 13])
        })
        .boxed()
}

/// Scheduling mode for checked runs: serial unless `NML_TEST_JOBS` asks
/// for workers (CI runs the suite once per mode).
fn sched() -> ScheduleOptions {
    let jobs = std::env::var("NML_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ScheduleOptions {
        jobs,
        ..ScheduleOptions::default()
    }
}

/// A fault-free oracle interpreter.
fn clean_config() -> InterpConfig {
    InterpConfig::default()
}

/// The faulted interpreter also runs with an aggressive GC threshold and
/// region validation, so injected faults land on a heap that is already
/// under pressure.
fn faulted_config(plan: FaultPlan) -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: 16,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        fault: plan,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pipeline_survives_budgets_and_faults(
        src in program(),
        budget in budget(),
        plan in fault_plan(),
    ) {
        // 1. Totality: the governed front end must never fail (the
        //    generated programs are well-typed) and never panic.
        let compiled = compile_governed(&src, budget).expect("front end is total");

        // 2. Soundness of every (possibly degraded) summary against the
        //    reference interpreter's exact tables.
        let tables = tabulate_program(&compiled.analysis.program, &compiled.analysis.info)
            .expect("prelude is first-order");
        for (name, summary) in &compiled.analysis.summaries {
            for (i, p) in summary.params.iter().enumerate() {
                let exact = reference_global(&tables, &compiled.analysis.info, *name, i)
                    .expect("reference G(f,i)");
                prop_assert!(
                    exact.le(p.verdict),
                    "{src}\n{name} param {i}: degraded {:?} under exact {exact:?}",
                    p.verdict
                );
            }
        }

        // 3. Observational equality: unoptimized/fault-free is the
        //    oracle; the optimized program must match it even while the
        //    fault plan is retreating allocations, denying regions, and
        //    forcing collections.
        let oracle = run_with(&compiled.ir, clean_config()).expect("clean run");
        let optimized = compile_optimized_governed(&src, budget).expect("front end is total");
        let faulted = run_with(&optimized.ir, faulted_config(plan))
            .expect("faults are recoverable: the run must still finish");
        prop_assert_eq!(&oracle.result, &faulted.result, "{}", src);
    }

    /// Checked mode under live faults: the soundness sentinel must stay
    /// silent while retreats, denials, and forced GCs batter the heap —
    /// those faults degrade claims, they never falsify one — and the
    /// checked run must still match the fault-free oracle.
    #[test]
    fn checked_mode_stays_silent_under_faults(
        src in program(),
        plan in fault_plan(),
    ) {
        let compiled = compile_governed(&src, Budget::unlimited()).expect("front end");
        let oracle = run_with(&compiled.ir, clean_config()).expect("clean run");
        let (out, _) = run_checked(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &CheckedOptions::default(),
            &faulted_config(plan),
        )
        .expect("checked+faulted run finishes");
        prop_assert_eq!(&out.result, &oracle.result, "{}", src);
        prop_assert_eq!(out.stats.violations, 0, "{}: fault noise misread as unsoundness", src);
        prop_assert_eq!(out.attempts, 1, "{}", src);
        prop_assert!(!out.degraded_unoptimized, "{}", src);
    }

    /// Heap-capacity faults: the run either finishes with the oracle's
    /// result or fails with the *typed* out-of-memory error — never a
    /// panic, never a wrong answer.
    #[test]
    fn capacity_exhaustion_is_a_typed_error(
        src in program(),
        cap in 1u64..24,
        seed in any::<u64>(),
    ) {
        let compiled = compile_governed(&src, Budget::unlimited()).expect("front end");
        let oracle = run_with(&compiled.ir, clean_config()).expect("clean run");
        let plan = FaultPlan::new(seed).with_heap_capacity(cap);
        match run_with(&compiled.ir, faulted_config(plan)) {
            Ok(out) => prop_assert_eq!(&out.result, &oracle.result, "{}", src),
            Err(e) => {
                let shown = e.to_string();
                prop_assert!(shown.contains("out of memory"), "unexpected error: {}", shown);
            }
        }
    }
}
