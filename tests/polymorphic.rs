//! Polymorphic invariance (paper §5, Theorem 1), verified empirically:
//! for several polymorphic functions, analyze multiple monotype
//! instances *directly* (via monomorphization) and check that the number
//! of retained top spines is identical across instances — and that
//! `transfer_verdict` predicts each instance from the simplest one.

use nml_escape_analysis::escape::{
    global_escape, invariance_holds, transfer_verdict, Engine, EscapeSummary,
};
use nml_escape_analysis::syntax::{parse_program, Symbol};
use nml_escape_analysis::types::infer_and_monomorphize;

/// Analyzes `specialized` inside the monomorphization of `src`.
fn instance(src: &str, specialized: &str) -> EscapeSummary {
    let p = parse_program(src).expect("parse");
    let m = infer_and_monomorphize(&p).expect("mono");
    let mut en = Engine::new(&m.program, &m.info);
    global_escape(&mut en, Symbol::intern(specialized)).unwrap_or_else(|e| {
        panic!(
            "no {specialized} in {:?}: {e}",
            m.program
                .bindings
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
        )
    })
}

const APPEND_DEF: &str = "append x y = if (null x) then y
                                       else cons (car x) (append (cdr x) y)";

#[test]
fn append_three_instances() {
    let flat = instance(
        &format!("letrec {APPEND_DEF} in append [1] [2]"),
        "append__i",
    );
    let nested = instance(
        &format!("letrec {APPEND_DEF} in append [[1]] [[2]]"),
        "append__iL",
    );
    let deep = instance(
        &format!("letrec {APPEND_DEF} in append [[[1]]] [[[2]]]"),
        "append__iLL",
    );
    assert!(invariance_holds(&flat, &nested));
    assert!(invariance_holds(&nested, &deep));
    // Retained top spines: param 1 retains exactly 1 at every instance;
    // param 2 retains 0.
    for s in [&flat, &nested, &deep] {
        assert_eq!(s.param(0).retained_spines(), 1, "{s}");
        assert_eq!(s.param(1).retained_spines(), 0, "{s}");
    }
    // transfer_verdict reproduces the direct analyses.
    assert_eq!(
        transfer_verdict(flat.param(0).verdict, 1, 2),
        nested.param(0).verdict
    );
    assert_eq!(
        transfer_verdict(flat.param(0).verdict, 1, 3),
        deep.param(0).verdict
    );
}

#[test]
fn length_never_escapes_at_any_instance() {
    let def = "len l = if (null l) then 0 else 1 + len (cdr l)";
    let flat = instance(&format!("letrec {def} in len [1]"), "len__i");
    let nested = instance(&format!("letrec {def} in len [[1]]"), "len__iL");
    assert!(invariance_holds(&flat, &nested));
    assert!(!flat.param(0).escapes());
    assert!(!nested.param(0).escapes());
}

#[test]
fn rev_instances_retain_top_spine() {
    let defs = "append x y = if (null x) then y
                             else cons (car x) (append (cdr x) y);
                rev l = if (null l) then nil
                        else append (rev (cdr l)) (cons (car l) nil)";
    let flat = instance(&format!("letrec {defs} in rev [1]"), "rev__i");
    let nested = instance(&format!("letrec {defs} in rev [[1]]"), "rev__iL");
    assert!(invariance_holds(&flat, &nested));
    assert_eq!(flat.param(0).retained_spines(), 1);
    assert_eq!(nested.param(0).retained_spines(), 1);
    assert_eq!(nested.param(0).spines, 2);
}

#[test]
fn map_instances_with_identity() {
    // map id at element types int and int list.
    let defs = "map f l = if (null l) then nil
                          else cons (f (car l)) (map f (cdr l));
                id x = x";
    let flat = instance(&format!("letrec {defs} in map id [1]"), "map__i_i");
    let nested = instance(&format!("letrec {defs} in map id [[1]]"), "map__iL_iL");
    assert!(
        invariance_holds(&flat, &nested),
        "flat:\n{flat}\nnested:\n{nested}"
    );
    // The list parameter retains its top spine at both instances.
    assert_eq!(flat.param(1).retained_spines(), 1);
    assert_eq!(nested.param(1).retained_spines(), 1);
}

#[test]
fn simplest_instance_route_agrees_with_direct_route() {
    // Route 1 (paper): analyze the simplest instance, transfer.
    // Route 2: monomorphize and analyze directly. They must agree.
    let src = "letrec append x y = if (null x) then y
                                   else cons (car x) (append (cdr x) y)
               in append [[1]] [[2]]";
    let simplest = {
        let a = nml_escape_analysis::escape::analyze_source(src).expect("analysis");
        a.summaries[&Symbol::intern("append")].clone()
    };
    let direct = instance(src, "append__iL");
    for i in 0..2 {
        let transferred = transfer_verdict(
            simplest.param(i).verdict,
            simplest.param(i).spines,
            direct.param(i).spines,
        );
        assert_eq!(
            transferred,
            direct.param(i).verdict,
            "param {i}: transfer disagrees with direct analysis"
        );
    }
}
