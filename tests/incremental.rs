//! Incremental re-analysis against the from-scratch oracle.
//!
//! Two claims, checked on seeded corpusgen programs under type-preserving
//! binding mutations:
//!
//! 1. **Equivalence.** After any sequence of updates, the incremental
//!    session's summaries are *identical* to a from-scratch analysis of
//!    the current source — the retained slot/summary state never leaks a
//!    stale value.
//!
//! 2. **Minimality.** An update re-solves exactly the *hash-dirty cone*:
//!    the edited binding's SCC plus every SCC that transitively depends
//!    on it (computed here independently from the call graph), and
//!    nothing else. An update whose pretty-printed form is unchanged
//!    re-solves nothing.

use nml_escape_analysis::escape::{
    analyze_source_scheduled, Analysis, Budget, EngineConfig, Incremental, PolyMode,
    ScheduleOptions,
};
use nml_escape_analysis::syntax::callgraph::CallGraph;
use nml_escape_analysis::syntax::{parse_program, pretty_program};
use proptest::prelude::*;

/// The from-scratch oracle: a cold SCC-scheduled analysis.
fn scratch(src: &str) -> Analysis {
    analyze_source_scheduled(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        Budget::unlimited(),
        &ScheduleOptions::default(),
    )
    .expect("scratch analysis")
}

fn assert_matches_scratch(label: &str, incremental: &Analysis, src: &str) {
    let oracle = scratch(src);
    assert_eq!(
        incremental.summaries.keys().collect::<Vec<_>>(),
        oracle.summaries.keys().collect::<Vec<_>>(),
        "{label}: summary key sets differ"
    );
    for (name, got) in &incremental.summaries {
        assert_eq!(
            got, &oracle.summaries[name],
            "{label}: summary of `{name}` differs from scratch"
        );
    }
}

/// The expected dirty cone of editing `name` in `src`: the size of the
/// set containing the binding's SCC and every transitive dependent SCC,
/// plus the total SCC count. Computed straight from the public call
/// graph, independently of the incremental engine's hashing.
fn dirty_cone(src: &str, name: &str) -> (usize, usize) {
    let program = parse_program(src).expect("parse");
    let graph = CallGraph::build(&program);
    let dag = graph.condense();
    let edited = graph
        .names
        .iter()
        .position(|n| n.as_str() == name)
        .expect("edited binding exists");
    let root = dag.scc_of[edited];
    // Tarjan ids are callees-first (deps always smaller), so one forward
    // sweep finds every SCC that can reach `root` through its deps.
    let mut dirty = vec![false; dag.len()];
    dirty[root] = true;
    for id in root + 1..dag.len() {
        if dag.sccs[id].deps.iter().any(|&d| dirty[d]) {
            dirty[id] = true;
        }
    }
    (dirty.iter().filter(|&&d| d).count(), dag.len())
}

/// Whether two sources parse to the same pretty-printed program — the
/// exact condition under which the incremental layer's content hashes
/// are unchanged and it may re-solve nothing.
fn pretty_equal(a: &str, b: &str) -> bool {
    pretty_program(&parse_program(a).expect("parse"))
        == pretty_program(&parse_program(b).expect("parse"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One mutation: incremental == scratch, and exactly the hash-dirty
    /// cone was re-solved (or nothing, when the mutation pretty-prints
    /// identically).
    #[test]
    fn mutation_matches_scratch_and_resolves_only_the_dirty_cone(
        seed in 0u64..4096,
        mutation_seed in any::<u64>(),
    ) {
        let shape = nml_corpusgen::parse_shape("mixed:12/4").expect("shape");
        let corpus = nml_corpusgen::generate(seed, &shape);
        let base = corpus.source();
        let mut inc = Incremental::from_source(&base).expect("cold analysis");

        let m = corpus.mutate(mutation_seed);
        let edited = corpus.source_replacing(m.index, &m.rhs);
        inc.update_binding(&m.name, &m.rhs).expect("update accepted");

        let s = &inc.analysis().schedule;
        let (cone, scc_count) = dirty_cone(&edited, &m.name);
        prop_assert_eq!(s.scc_count, scc_count, "seed {} SCC count", seed);
        prop_assert_eq!(
            s.sccs_solved + s.sccs_reused, s.scc_count,
            "seed {}: every SCC is either solved or reused", seed
        );
        if pretty_equal(&base, &edited) {
            prop_assert_eq!(
                s.sccs_solved, 0,
                "seed {}: unchanged content hash must re-solve nothing", seed
            );
        } else {
            prop_assert_eq!(
                s.sccs_solved, cone,
                "seed {}: must re-solve exactly the dirty cone of `{}`", seed, m.name
            );
        }
        assert_matches_scratch(&format!("seed {seed} mutation of {}", m.name), inc.analysis(), &edited);

        // Replaying the same text is a no-op: the content hash already
        // matches, so zero SCCs are solved and nothing changes.
        inc.update_binding(&m.name, &m.rhs).expect("replay accepted");
        prop_assert_eq!(inc.analysis().schedule.sccs_solved, 0, "seed {} replay", seed);
        assert_matches_scratch(&format!("seed {seed} replay"), inc.analysis(), &edited);
    }

    /// A chain of mutations through `update_binding` stays equivalent to
    /// scratch at every step — retained state composes across edits.
    #[test]
    fn mutation_chains_stay_equivalent(seed in 0u64..1024) {
        let shape = nml_corpusgen::parse_shape("mixed:16/4").expect("shape");
        let mut corpus = nml_corpusgen::generate(seed, &shape);
        let mut inc = Incremental::from_source(&corpus.source()).expect("cold analysis");
        for step in 0..4u64 {
            let m = corpus.mutate(seed.wrapping_mul(31).wrapping_add(step));
            inc.update_binding(&m.name, &m.rhs).expect("update accepted");
            // Fold the mutation into the corpus so `source()` tracks the
            // session's current program text.
            corpus.bindings[m.index].rhs = m.rhs;
            assert_matches_scratch(
                &format!("seed {seed} step {step} ({})", m.name),
                inc.analysis(),
                &corpus.source(),
            );
        }
    }
}

/// `update_source` on a generated corpus: a whole-file rewrite of one
/// binding re-solves only its cone; adding a fresh root re-solves just
/// the new SCC (plus the re-inferred body's — none).
#[test]
fn update_source_on_generated_corpus() {
    let shape = nml_corpusgen::parse_shape("mixed:24/6").expect("shape");
    let corpus = nml_corpusgen::generate(7, &shape);
    let base = corpus.source();
    let mut inc = Incremental::from_source(&base).expect("cold analysis");

    let m = corpus.mutate(42);
    let edited = corpus.source_replacing(m.index, &m.rhs);
    inc.update_source(&edited)
        .expect("whole-file update accepted");
    let s = &inc.analysis().schedule;
    let (cone, scc_count) = dirty_cone(&edited, &m.name);
    assert_eq!(s.scc_count, scc_count);
    if pretty_equal(&base, &edited) {
        assert_eq!(s.sccs_solved, 0);
    } else {
        assert_eq!(s.sccs_solved, cone, "whole-file edit of one binding");
        assert_eq!(s.sccs_reused, scc_count - cone);
    }
    assert_matches_scratch("update_source mutation", inc.analysis(), &edited);
}
