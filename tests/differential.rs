//! The differential soundness harness for checked-optimization mode and
//! for the bytecode VM against its tree-walking oracle.
//!
//! Two claims for checked mode, each checked on generated programs:
//!
//! 1. **Transparency.** Without injected faults, a fully optimized
//!    program executed under `--checked` (tombstoning heap, claim
//!    stamps, copy-then-retire `DCONS`) is observationally identical to
//!    the unoptimized interpreter, with zero violations, zero retries,
//!    and an empty quarantine — the sentinel never cries wolf on claims
//!    the analysis actually proved.
//!
//! 2. **Recovery.** With deliberately injected *wrong* claims (body cons
//!    sites forced onto the stack), the checked run detects each
//!    violation, quarantines exactly the offending site, re-executes,
//!    and still converges to the unoptimized interpreter's value —
//!    without ever degrading to the fully unoptimized fallback when
//!    retries suffice.
//!
//! Scheduling mode follows `NML_TEST_JOBS` like the equivalence suite,
//! so CI exercises the harness serially and with 4 workers.

use nml_escape_analysis::escape::{Budget, PolyMode, ScheduleOptions};
use nml_escape_analysis::opt::{body_cons_sites, IrProgram, SabotagePlan};
use nml_escape_analysis::pipeline::{
    compile_optimized_scheduled, compile_scheduled, run_checked, run_with, run_with_engine,
    CheckedOptions, PipelineError,
};
use nml_escape_analysis::runtime::{Engine, InterpConfig, RuntimeError};
use proptest::prelude::*;

const PRELUDE: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  revon l a = if (null l) then a else revon (cdr l) (cons (car l) a);
  take n l = if n = 0 then nil
             else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  copy l = if (null l) then nil else cons (car l) (copy (cdr l));
  incall l = if (null l) then nil else cons ((car l) + 1) (incall (cdr l));
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l)
in ";

fn leaf() -> BoxedStrategy<String> {
    prop_oneof![
        proptest::collection::vec(0i64..9, 0..5).prop_map(|xs| {
            let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }),
        (0u32..6).prop_map(|k| format!("(mklist {k})")),
    ]
    .boxed()
}

fn list_expr() -> BoxedStrategy<String> {
    leaf().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("(copy {e})")),
            inner.clone().prop_map(|e| format!("(incall {e})")),
            inner.clone().prop_map(|e| format!("(revon {e} nil)")),
            (0u32..4, inner.clone()).prop_map(|(k, e)| format!("(take {k} {e})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("(append {a} {b})")),
        ]
    })
}

fn program() -> BoxedStrategy<String> {
    prop_oneof![
        list_expr().prop_map(|e| format!("{PRELUDE}{e}")),
        list_expr().prop_map(|e| format!("{PRELUDE}(sum {e})")),
    ]
    .boxed()
}

/// Scheduling mode under test: serial unless `NML_TEST_JOBS` says
/// otherwise (CI runs the suite once per mode).
fn sched() -> ScheduleOptions {
    let jobs = std::env::var("NML_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ScheduleOptions {
        jobs,
        ..ScheduleOptions::default()
    }
}

/// The unoptimized, unchecked oracle.
fn oracle(src: &str) -> String {
    let c = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    run_with(&c.ir, InterpConfig::default())
        .expect("oracle run")
        .result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Transparency: checked execution of the fully optimized program is
    /// invisible — same value, no violations, no retries.
    #[test]
    fn checked_optimized_matches_unoptimized_cleanly(src in program()) {
        let want = oracle(&src);
        let (out, _) = run_checked(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &CheckedOptions::default(),
            &InterpConfig::default(),
        )
        .expect("checked run");
        prop_assert_eq!(&out.result, &want, "{}", src);
        prop_assert_eq!(out.stats.violations, 0, "{}", src);
        prop_assert_eq!(out.attempts, 1, "{}", src);
        prop_assert!(out.quarantined.is_empty(), "{}", src);
        prop_assert!(!out.degraded_unoptimized, "{}", src);
    }

    /// Recovery: force wrong stack claims onto a random subset of the
    /// body's cons sites; the checked run must converge to the oracle's
    /// value, quarantining exactly the sites whose claims actually broke.
    #[test]
    fn injected_wrong_claims_recover_to_oracle(src in program(), mask in any::<u64>()) {
        let want = oracle(&src);
        let compiled = compile_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        let all_sites = body_cons_sites(&compiled.ir);
        let sabotaged: Vec<_> = all_sites
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        let opts = CheckedOptions {
            max_retries: sabotaged.len() as u32 + 2,
            sabotage: SabotagePlan::stack(sabotaged.clone()),
            ..CheckedOptions::default()
        };
        let (out, _) = run_checked(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &opts,
            &InterpConfig::default(),
        )
        .expect("checked run recovers");
        prop_assert_eq!(&out.result, &want, "{}", src);
        prop_assert!(!out.degraded_unoptimized, "{}: retries were sufficient", src);
        // Every quarantined site is one we sabotaged (the analysis's own
        // claims must never be condemned), and each contributed exactly
        // one violation.
        for rec in &out.quarantined {
            prop_assert!(sabotaged.contains(&rec.site), "{}: site {:?}", src, rec.site);
        }
        prop_assert_eq!(out.stats.violations, out.quarantined.len() as u64, "{}", src);
        prop_assert_eq!(u64::from(out.attempts), out.stats.retries + 1, "{}", src);
    }
}

/// The acceptance scenario, pinned deterministically: all three cells of
/// a literal result are claimed stack-dead; the checked run catches one
/// violation per attempt (the renderer touches the outermost cell
/// first), quarantines all three, and converges on the oracle's value
/// without degrading.
#[test]
fn violation_quarantine_retry_converges() {
    let src = "[1, 2, 3]";
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    assert_eq!(sites.len(), 3);
    let opts = CheckedOptions {
        max_retries: 8,
        sabotage: SabotagePlan::stack(sites.clone()),
        ..CheckedOptions::default()
    };
    let (out, _) = run_checked(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
        &opts,
        &InterpConfig::default(),
    )
    .expect("checked run");
    assert_eq!(out.result, "[1, 2, 3]");
    assert!(!out.degraded_unoptimized);
    assert_eq!(out.attempts, 4, "one retry per condemned site");
    assert_eq!(out.stats.violations, 3);
    assert_eq!(out.stats.quarantined_sites, 3);
    assert_eq!(out.stats.retries, 3);
    let mut condemned: Vec<_> = out.quarantined.iter().map(|r| r.site).collect();
    condemned.sort_unstable();
    assert_eq!(condemned, sites, "exactly the sabotaged sites");
    for (i, rec) in out.quarantined.iter().enumerate() {
        assert_eq!(rec.attempt, i as u32, "one detection per attempt");
    }
}

/// Corpusgen differential smoke: on seeded generated programs (deep
/// synthetic call graphs, dead allocation sites, higher-order plumbing),
/// the bytecode VM and the tree-walking oracle must agree — on the
/// rendered value, or on the exact resource error — under a bounded fuel
/// budget, both unoptimized and fully optimized.
#[test]
fn corpusgen_vm_matches_tree_walker() {
    let cases: u64 = std::env::var("NML_CORPUS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let shape = nml_corpusgen::parse_shape("mixed:16/4").expect("shape");
    let fueled = InterpConfig {
        fuel: Some(500_000),
        ..InterpConfig::default()
    };
    for seed in 0..cases {
        let src = nml_corpusgen::generate(seed, &shape).source();
        for (label, compiled) in [
            (
                "plain",
                compile_scheduled(
                    &src,
                    PolyMode::SimplestInstance,
                    Budget::unlimited(),
                    &sched(),
                ),
            ),
            (
                "optimized",
                compile_optimized_scheduled(
                    &src,
                    PolyMode::SimplestInstance,
                    Budget::unlimited(),
                    &sched(),
                ),
            ),
        ] {
            let compiled = compiled.unwrap_or_else(|e| panic!("seed {seed} {label}: {e}"));
            let tree = run_with_engine(&compiled.ir, fueled.clone(), Engine::Tree);
            let vm = run_with_engine(&compiled.ir, fueled.clone(), Engine::Vm);
            match (tree, vm) {
                (Ok(t), Ok(v)) => {
                    assert_eq!(t.result, v.result, "seed {seed} {label}: values differ")
                }
                (Err(t), Err(v)) => assert_eq!(
                    t.to_string(),
                    v.to_string(),
                    "seed {seed} {label}: errors differ"
                ),
                (t, v) => panic!(
                    "seed {seed} {label}: engines disagree on success: tree={:?} vm={:?}",
                    t.map(|o| o.result),
                    v.map(|o| o.result)
                ),
            }
        }
    }
}

/// Retry exhaustion: with `max_retries: 0` the first violation degrades
/// straight to the unoptimized interpreter — still the right value,
/// reported as a degradation.
#[test]
fn exhausted_retries_degrade_to_unoptimized() {
    let src = "[4, 5]";
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    let opts = CheckedOptions {
        max_retries: 0,
        sabotage: SabotagePlan::stack(sites),
        ..CheckedOptions::default()
    };
    let (out, _) = run_checked(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
        &opts,
        &InterpConfig::default(),
    )
    .expect("degraded run still succeeds");
    assert_eq!(out.result, "[4, 5]");
    assert!(out.degraded_unoptimized);
    assert_eq!(out.stats.violations, 1);
}

/// The quarantine set persists: a second run against the same file
/// starts with every condemned site disabled and needs no retries.
#[test]
fn quarantine_file_warm_start_needs_no_retries() {
    let dir = std::env::temp_dir().join(format!("nml-diff-quar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("quarantine.txt");
    let src = "[7, 8, 9]";
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    let opts = CheckedOptions {
        max_retries: 8,
        sabotage: SabotagePlan::stack(sites.clone()),
        quarantine_path: Some(path.clone()),
        ..CheckedOptions::default()
    };
    let (cold, _) = run_checked(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
        &opts,
        &InterpConfig::default(),
    )
    .expect("cold run");
    assert_eq!(cold.result, "[7, 8, 9]");
    assert_eq!(cold.stats.retries, 3);
    let (warm, _) = run_checked(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
        &opts,
        &InterpConfig::default(),
    )
    .expect("warm run");
    assert_eq!(warm.result, "[7, 8, 9]");
    assert_eq!(warm.stats.retries, 0, "persisted quarantine pre-empts all");
    assert_eq!(warm.stats.violations, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A wrong *reuse* claim (aliased `DCONS` target) is caught as a
/// structured reuse violation by the copy-then-retire discipline.
#[test]
fn aliased_dcons_reuse_claim_is_caught() {
    use nml_escape_analysis::opt::{IrExpr, IrProgram, SiteId};
    use nml_escape_analysis::runtime::{AccessKind, ClaimKind, HeapConfig, Interp, InterpConfig};
    use nml_escape_analysis::syntax::{Const, Prim, Symbol};

    let x = Symbol::intern("x");
    // letrec x = cons 1 nil in (car (DCONS x 2 nil)) + (car x)
    // The DCONS claims x's cell is dead; the trailing `car x` disproves it.
    let body = IrExpr::Letrec(
        vec![(
            x,
            IrExpr::Cons {
                alloc: nml_escape_analysis::opt::AllocMode::Heap,
                head: Box::new(IrExpr::Const(Const::Int(1))),
                tail: Box::new(IrExpr::Const(Const::Nil)),
                site: SiteId(0),
            },
        )],
        Box::new(IrExpr::Prim2(
            Prim::Add,
            Box::new(IrExpr::Prim1(
                Prim::Car,
                Box::new(IrExpr::Dcons {
                    reused: x,
                    head: Box::new(IrExpr::Const(Const::Int(2))),
                    tail: Box::new(IrExpr::Const(Const::Nil)),
                    site: SiteId(1),
                }),
            )),
            Box::new(IrExpr::Prim1(Prim::Car, Box::new(IrExpr::Var(x)))),
        )),
    );
    let ir = IrProgram {
        funcs: vec![],
        body,
        next_site: 2,
    };

    // Unchecked: the aliased read silently sees the overwritten head.
    let mut plain = Interp::new(&ir).expect("init");
    let v = plain.run().expect("unchecked run completes");
    assert!(matches!(v, nml_escape_analysis::runtime::Value::Int(4)));

    // Checked: the same read is a reuse violation at the DCONS site.
    let config = InterpConfig {
        heap: HeapConfig {
            checked: true,
            ..HeapConfig::default()
        },
        ..InterpConfig::default()
    };
    let mut checked = Interp::with_config(&ir, config).expect("init");
    let err = checked.run().expect_err("aliased reuse must be caught");
    let RuntimeError::Soundness(v) = err else {
        panic!("expected soundness violation, got {err}");
    };
    assert_eq!(v.claim, ClaimKind::Reuse);
    assert_eq!(v.access, AccessKind::Car);
    assert_eq!(v.site, Some(SiteId(1)));
}

/// Checked mode composes with the PR 1 fault plans: injected retreats,
/// denials, and forced GCs are all claim-*preserving*, so a checked run
/// under active faults still reports zero violations and matches the
/// oracle.
#[test]
fn checked_mode_is_transparent_under_injected_faults() {
    use nml_escape_analysis::runtime::{FaultPlan, FaultRate, HeapConfig};
    let src = "letrec copy l = if (null l) then nil else cons (car l) (copy (cdr l));
               mklist n = if n = 0 then nil else cons n (mklist (n - 1))
               in copy (copy (mklist 12))";
    let want = oracle(src);
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed)
            .with_alloc_retreats(FaultRate::new(1, 3))
            .with_region_denials(FaultRate::new(1, 3))
            .with_forced_gc(FaultRate::new(1, 5));
        let config = InterpConfig {
            heap: HeapConfig {
                gc_threshold: 16,
                gc_enabled: true,
                checked: false,
                ..HeapConfig::default()
            },
            validate_regions: false,
            fault: plan,
            ..InterpConfig::default()
        };
        let (out, _) = run_checked(
            src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &CheckedOptions::default(),
            &config,
        )
        .expect("checked+faulted run");
        assert_eq!(out.result, want, "seed {seed}");
        assert_eq!(out.stats.violations, 0, "seed {seed}");
        assert!(!out.degraded_unoptimized, "seed {seed}");
    }
}

// --- Tree vs VM: the execution-engine differential ---------------------
//
// A third claim: the bytecode VM is observationally identical to the
// tree-walking interpreter on every program the front end accepts —
// same rendered value or same rendered error — before optimization,
// after the full pass manager, and under the checked-mode sentinel with
// deliberately wrong claims injected. Statistics and step counts are
// engine-specific and deliberately *not* compared; the contract is the
// observable outcome.

/// Runs `ir` on `engine` and collapses the outcome to a comparable
/// string: the rendered value on success, the rendered error otherwise.
fn observe(ir: &IrProgram, engine: Engine) -> String {
    match run_with_engine(ir, InterpConfig::default(), engine) {
        Ok(out) => out.result,
        Err(e) => format!("error: {e}"),
    }
}

/// Asserts the two engines agree on `src`, both on the plain lowering
/// and after the full optimization pipeline.
fn assert_engines_agree(name: &str, src: &str) {
    let plain = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .unwrap_or_else(|e| panic!("{name}: front end: {e}"));
    assert_eq!(
        observe(&plain.ir, Engine::Tree),
        observe(&plain.ir, Engine::Vm),
        "{name}: engines diverge unoptimized"
    );
    let opt = compile_optimized_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .unwrap_or_else(|e| panic!("{name}: optimizer: {e}"));
    assert_eq!(
        observe(&opt.ir, Engine::Tree),
        observe(&opt.ir, Engine::Vm),
        "{name}: engines diverge optimized"
    );
}

/// The whole workload corpus — including the paper's Appendix A
/// partition sort — runs identically on both engines, optimized and
/// unoptimized.
#[test]
fn corpus_agrees_across_engines() {
    for w in nml_escape_analysis::corpus::ALL {
        assert_engines_agree(w.name, w.source);
    }
}

/// The shipped example programs (`programs/*.nml`) agree across engines.
#[test]
fn program_files_agree_across_engines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut ran = 0;
    for entry in std::fs::read_dir(&dir).expect("programs/ directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "nml") {
            let src = std::fs::read_to_string(&path).expect("read program");
            assert_engines_agree(&path.display().to_string(), &src);
            ran += 1;
        }
    }
    assert!(
        ran >= 5,
        "expected the shipped corpus, found {ran} programs"
    );
}

/// Checked mode on the VM: inject wrong stack claims at every body cons
/// site; the VM-executed sentinel must catch them, quarantine exactly
/// the sabotaged sites, and converge to the tree-walker oracle's value.
#[test]
fn vm_checked_with_injected_unsound_claims_recovers() {
    let src = "letrec rev l a = if (null l) then a
                                else rev (cdr l) (cons (car l) a)
               in rev [1, 2, 3, 4] nil";
    let want = oracle(src);
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    assert!(!sites.is_empty());
    for engine in [Engine::Vm, Engine::Tree] {
        let opts = CheckedOptions {
            max_retries: sites.len() as u32 + 2,
            sabotage: SabotagePlan::stack(sites.clone()),
            engine,
            ..CheckedOptions::default()
        };
        let (out, _) = run_checked(
            src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &opts,
            &InterpConfig::default(),
        )
        .expect("checked run recovers");
        assert_eq!(out.result, want, "{engine}");
        assert!(!out.degraded_unoptimized, "{engine}");
        for rec in &out.quarantined {
            assert!(sites.contains(&rec.site), "{engine}: site {:?}", rec.site);
        }
        assert_eq!(
            out.stats.violations,
            out.quarantined.len() as u64,
            "{engine}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The 128-case generated sweep: tree and VM agree on random list
    /// programs, unoptimized and under the full pass manager.
    #[test]
    fn generated_programs_agree_across_engines(src in program()) {
        let plain = compile_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        prop_assert_eq!(
            observe(&plain.ir, Engine::Tree),
            observe(&plain.ir, Engine::Vm),
            "unoptimized: {}",
            src
        );
        let opt = compile_optimized_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("optimizer");
        prop_assert_eq!(
            observe(&opt.ir, Engine::Tree),
            observe(&opt.ir, Engine::Vm),
            "optimized: {}",
            src
        );
    }
}

// --- SROA: the scalar-replacement differential -------------------------
//
// PR 10's scalar replacement is VM-only: `AllocMode::Elided` is a
// *license* the bytecode compiler may act on after its own slot-level
// re-verification, while the tree-walker treats the mark exactly like a
// heap allocation and serves as the oracle. Three claims:
//
// 1. With SROA marks applied, both engines still agree on every program
//    — the elision is observationally invisible — and stripping the
//    marks changes nothing but the allocation counters.
// 2. The license is narrow: the pass only marks sites the lattice
//    proved `NoEscape` *and* unaliased, never Unknown, escaping, or
//    aliased sites.
// 3. A deliberately wrong `Elided` mark is a dud: the bytecode verifier
//    refuses to scalarize it, checked mode stays silent, and the value
//    matches the oracle.
//
// Fault-plan and heap-capacity differentials elsewhere in this suite
// stay SROA-off (`compile_scheduled` lowers all-heap): elision removes
// allocations, so a deterministic fault plan would fire at different
// events on the two engines.

use nml_escape_analysis::escape::EscapeState;
use nml_escape_analysis::opt::{
    analyze_sites, annotate_sroa, strip_sroa, walk_ir, AllocMode, IrExpr, SiteId,
};

/// Collects every cons site the SROA pass marked `Elided`.
fn elided_sites(ir: &IrProgram) -> Vec<SiteId> {
    let mut out = Vec::new();
    let mut visit = |e: &IrExpr| {
        if let IrExpr::Cons {
            alloc: AllocMode::Elided,
            site,
            ..
        } = e
        {
            out.push(*site);
        }
    };
    for f in &ir.funcs {
        walk_ir(&f.body, &mut visit);
    }
    walk_ir(&ir.body, &mut visit);
    out
}

/// SROA on/off over the whole workload corpus, on both engines: the
/// fully optimized IR (pass manager runs SROA by default) and the same
/// IR with the marks stripped produce the same value everywhere.
#[test]
fn corpus_agrees_across_engines_with_and_without_sroa() {
    for w in nml_escape_analysis::corpus::ALL {
        let compiled = compile_optimized_scheduled(
            w.source,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .unwrap_or_else(|e| panic!("{}: optimizer: {e}", w.name));
        let on_vm = observe(&compiled.ir, Engine::Vm);
        assert_eq!(
            observe(&compiled.ir, Engine::Tree),
            on_vm,
            "{}: engines diverge with SROA",
            w.name
        );
        let mut off = compiled.ir.clone();
        strip_sroa(&mut off);
        let off_vm = observe(&off, Engine::Vm);
        assert_eq!(
            observe(&off, Engine::Tree),
            off_vm,
            "{}: engines diverge without SROA",
            w.name
        );
        assert_eq!(on_vm, off_vm, "{}: SROA changes the VM's value", w.name);
    }
}

/// A pinned SROA-friendly workload: the pass fires, the VM actually
/// elides allocations (fewer heap cells, nonzero `allocs_elided`), and
/// the tree-walker oracle — which never elides — still agrees.
#[test]
fn sroa_elision_fires_and_engines_agree() {
    let src = "letrec
       step i acc = letrec t = cons i (cons acc nil)
                    in (car t) * 2 + car (cdr t);
       loop n acc = if n = 0 then acc else loop (n - 1) (step n acc)
     in loop 50 0";
    let mut compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let marked = annotate_sroa(&mut compiled.ir, &compiled.analysis);
    assert!(marked > 0, "the workload must have elidable sites");
    let tree = run_with_engine(&compiled.ir, InterpConfig::default(), Engine::Tree).expect("tree");
    let vm = run_with_engine(&compiled.ir, InterpConfig::default(), Engine::Vm).expect("vm");
    assert_eq!(tree.result, vm.result);
    assert_eq!(tree.stats.allocs_elided, 0, "the oracle never elides");
    assert!(vm.stats.allocs_elided > 0, "the VM must actually elide");
    assert!(
        vm.stats.heap_allocs < tree.stats.heap_allocs,
        "elision must remove heap allocations: vm={} tree={}",
        vm.stats.heap_allocs,
        tree.stats.heap_allocs
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The 128-case SROA sweep: random list programs agree across both
    /// engines with SROA marks applied and with them stripped, and the
    /// two configurations agree with each other.
    #[test]
    fn generated_programs_agree_under_sroa_on_and_off(src in program()) {
        let mut on = compile_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        annotate_sroa(&mut on.ir, &on.analysis);
        let mut off = on.ir.clone();
        strip_sroa(&mut off);
        let on_vm = observe(&on.ir, Engine::Vm);
        prop_assert_eq!(
            observe(&on.ir, Engine::Tree),
            on_vm.clone(),
            "sroa on: {}",
            src
        );
        let off_vm = observe(&off, Engine::Vm);
        prop_assert_eq!(
            observe(&off, Engine::Tree),
            off_vm.clone(),
            "sroa off: {}",
            src
        );
        prop_assert_eq!(on_vm, off_vm, "sroa changes the value: {}", src);
    }

    /// The license is narrow: every site the pass marks `Elided` carries
    /// a lattice fact proving `NoEscape` *and* unaliased. Sites with no
    /// fact (Unknown), escaping states, or alias-class company are never
    /// marked.
    #[test]
    fn sroa_never_marks_unproven_sites(src in program()) {
        let mut c = compile_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        let facts = analyze_sites(&c.ir, &c.analysis);
        annotate_sroa(&mut c.ir, &c.analysis);
        for site in elided_sites(&c.ir) {
            let fact = facts.get(&site);
            prop_assert!(
                fact.is_some(),
                "elided site {:?} has no lattice fact (Unknown): {}",
                site,
                src
            );
            let fact = fact.unwrap();
            prop_assert_eq!(
                fact.state,
                EscapeState::NoEscape,
                "elided site {:?} escapes: {}",
                site,
                src
            );
            prop_assert!(!fact.aliased, "elided site {:?} is aliased: {}", site, src);
        }
    }
}

/// A wrong `Elided` mark is a dud: force the mark onto every body cons
/// site of a program whose cells all flow into the result. The bytecode
/// verifier must refuse to scalarize them, so checked mode stays silent
/// on both engines — no violations, no retries, no quarantine — and the
/// value matches the oracle. (Contrast with the stack sabotage above,
/// where wrong claims *do* fire the sentinel.)
#[test]
fn sabotaged_elide_marks_are_inert_on_both_engines() {
    let src = "letrec rev l a = if (null l) then a
                                else rev (cdr l) (cons (car l) a)
               in rev [1, 2, 3, 4] nil";
    let want = oracle(src);
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    assert!(!sites.is_empty());
    for engine in [Engine::Vm, Engine::Tree] {
        let opts = CheckedOptions {
            sabotage: SabotagePlan::elide(sites.clone()),
            engine,
            ..CheckedOptions::default()
        };
        let (out, _) = run_checked(
            src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &opts,
            &InterpConfig::default(),
        )
        .expect("checked run");
        assert_eq!(out.result, want, "{engine}");
        assert_eq!(
            out.stats.violations, 0,
            "{engine}: elide sabotage must be silent"
        );
        assert_eq!(out.attempts, 1, "{engine}");
        assert!(out.quarantined.is_empty(), "{engine}");
        assert!(!out.degraded_unoptimized, "{engine}");
    }
}

/// Non-claim runtime errors pass through the retry loop untouched.
#[test]
fn unrelated_runtime_errors_propagate() {
    let outcome = run_checked(
        "1 / 0",
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
        &CheckedOptions::default(),
        &InterpConfig::default(),
    );
    let Err(err) = outcome else {
        panic!("division by zero must not be recoverable");
    };
    assert!(matches!(
        err,
        PipelineError::Runtime(RuntimeError::DivisionByZero)
    ));
}
