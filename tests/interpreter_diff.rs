//! Differential testing of the interpreter against native Rust on the
//! sorting workloads: partition sort (baseline and `PS''`), insertion
//! sort, and merge sort must agree with `slice::sort` on random inputs —
//! under GC pressure and with region validation enabled.

use nml_escape_analysis::corpus;
use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::opt::{lower_program, reuse_variant, IrProgram, ReuseOptions};
use nml_escape_analysis::runtime::{HeapConfig, Interp, InterpConfig};
use nml_escape_analysis::syntax::Symbol;
use proptest::prelude::*;

fn stress() -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: 32,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        step_limit: 20_000_000,
        ..Default::default()
    }
}

fn call_sort(ir: &IrProgram, func: &str, input: &[i64]) -> Vec<i64> {
    let mut interp = Interp::with_config(ir, stress()).expect("interp");
    let l = interp.make_int_list(input);
    let out = interp
        .call(Symbol::intern(func), vec![l])
        .expect("sort runs");
    interp.read_int_list(out).expect("int list")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partition_sort_agrees_with_rust(input in proptest::collection::vec(-100i64..100, 0..40)) {
        let analysis = analyze_source(corpus::PARTITION_SORT.source).expect("analysis");
        let mut ir = lower_program(&analysis.program, &analysis.info);
        let append_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("append"),
            &ReuseOptions::dcons(),
        )
        .expect("append_r");
        let ps_r = reuse_variant(
            &mut ir,
            &analysis,
            Symbol::intern("ps"),
            &ReuseOptions {
                extra_rewrites: vec![(Symbol::intern("append"), append_r)],
                dcons: true,
                ..Default::default()
            },
        )
        .expect("ps_r");

        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(&call_sort(&ir, "ps", &input), &expect);
        prop_assert_eq!(&call_sort(&ir, ps_r.as_str(), &input), &expect);
    }

    #[test]
    fn insertion_sort_agrees_with_rust(input in proptest::collection::vec(-50i64..50, 0..30)) {
        let analysis = analyze_source(corpus::INSERTION_SORT.source).expect("analysis");
        let ir = lower_program(&analysis.program, &analysis.info);
        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(&call_sort(&ir, "isort", &input), &expect);
    }

    #[test]
    fn merge_sort_agrees_with_rust(input in proptest::collection::vec(-50i64..50, 0..30)) {
        let analysis = analyze_source(corpus::MERGE_SORT.source).expect("analysis");
        let ir = lower_program(&analysis.program, &analysis.info);
        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(&call_sort(&ir, "msort", &input), &expect);
    }

    #[test]
    fn tuple_partition_sort_agrees_with_rust(input in proptest::collection::vec(-50i64..50, 0..30)) {
        let analysis = analyze_source(corpus::SPLIT_TUPLE.source).expect("analysis");
        let ir = lower_program(&analysis.program, &analysis.info);
        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(&call_sort(&ir, "psort", &input), &expect);
    }
}
