//! The chaos harness: a deterministic, seeded storm of hostile traffic
//! against a live `nml_serve` server, at concurrency >= 4.
//!
//! Scenario kinds (drawn per request from a seeded generator):
//! well-formed evals, per-request fault plans (forced GC, allocation
//! retreats, tiny heap capacities), injected worker panics, looping
//! guests bounded by fuel, oversized non-tail recursion bounded by the
//! depth limit, unknown functions, and malformed frames (both invalid
//! requests and unparseable bytes).
//!
//! The invariants, checked at the end of the melee:
//!
//! 1. **exactly one** terminal response per request — nothing dropped,
//!    nothing duplicated, correlated by id (unparseable frames by their
//!    per-connection `id:null` count);
//! 2. every response's kind is in the scenario's expected set;
//! 3. the server drains and exits cleanly, and its final counters are
//!    consistent with what the clients observed.

use nml_escape_analysis::serve::json::Json;
use nml_escape_analysis::serve::{serve, Client, ServeConfig, ServerReport};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SRC: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
  sum l = if (null l) then 0 else car l + sum (cdr l);
  spin n = spin n;
  down n = if n = 0 then 0 else 1 + down (n - 1)
in rev [1, 2, 3]";

/// Deterministic splitmix64 — the chaos schedule is a pure function of
/// the seed, so a failure reproduces exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scripted request: the line to send and the response kinds it may
/// legitimately receive. `expect_ok` admits `status:"ok"`; `kinds` are
/// the admissible error kinds.
struct Scenario {
    id: i64,
    line: String,
    expect_ok: bool,
    kinds: &'static [&'static str],
    /// Unparseable on purpose: the response correlates as `id:null`.
    unparseable: bool,
}

fn scenario(id: i64, rng: &mut Rng) -> Scenario {
    let mk = |line: String, expect_ok: bool, kinds: &'static [&'static str]| Scenario {
        id,
        line,
        expect_ok,
        kinds,
        unparseable: false,
    };
    match rng.below(10) {
        // Plain evals: list reversal and folding.
        0 | 1 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"rev\",\"args\":[[1,2,{}]]}}",
                rng.below(90)
            ),
            true,
            &[],
        ),
        2 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"sum\",\"args\":[[{},2,3]]}}",
                rng.below(50)
            ),
            true,
            &[],
        ),
        // Eval under a deterministic fault plan: forced GCs and
        // allocation retreats are transparent; a tiny heap capacity may
        // also surface as a typed out-of-memory runtime error.
        3 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"rev\",\"args\":[[5,6,7,8]],\
                 \"fault\":{{\"seed\":{},\"forced_gc\":[1,{}]}}}}",
                rng.below(1000),
                2 + rng.below(6),
            ),
            true,
            &[],
        ),
        4 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"rev\",\"args\":[[1,2,3,4,5]],\
                 \"fault\":{{\"seed\":{},\"heap_capacity\":{}}}}}",
                rng.below(1000),
                4 + rng.below(40),
            ),
            true,
            &["runtime_error"],
        ),
        // Injected panic mid-request: quarantined, worker replaced.
        5 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"rev\",\"args\":[[9,8,7]],\
                 \"fault\":{{\"panic_at_alloc\":{}}}}}",
                rng.below(6),
            ),
            false,
            &["worker_panicked"],
        ),
        // A looping guest, bounded by fuel or by a deadline.
        6 => {
            if rng.below(2) == 0 {
                mk(
                    format!(
                        "{{\"op\":\"eval\",\"id\":{id},\"call\":\"spin\",\"args\":[0],\
                         \"fuel\":{}}}",
                        1000 + rng.below(50_000),
                    ),
                    false,
                    &["fuel_exhausted"],
                )
            } else {
                mk(
                    format!(
                        "{{\"op\":\"eval\",\"id\":{id},\"call\":\"spin\",\"args\":[0],\
                         \"timeout_ms\":1}}"
                    ),
                    false,
                    &["fuel_exhausted"],
                )
            }
        }
        // Oversized non-tail recursion, stopped by the depth limit.
        7 => mk(
            format!(
                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"down\",\"args\":[{}]}}",
                100_000 + rng.below(100_000),
            ),
            false,
            &["stack_overflow"],
        ),
        // Well-formed JSON, ill-formed request.
        8 => {
            let junk = match rng.below(4) {
                0 => format!("{{\"op\":\"eval\",\"id\":{id},\"fuel\":-7}}"),
                1 => format!("{{\"op\":\"warp\",\"id\":{id}}}"),
                2 => format!("{{\"op\":\"eval\",\"id\":{id},\"call\":7}}"),
                _ => format!("{{\"op\":\"eval\",\"id\":{id},\"call\":\"nope\"}}"),
            };
            let kinds: &[&str] = if junk.contains("nope") {
                &["runtime_error"]
            } else {
                &["bad_request"]
            };
            mk(junk, false, kinds)
        }
        // Unparseable bytes: the server answers id:null.
        _ => Scenario {
            id,
            line: match rng.below(3) {
                0 => "{nope".to_owned(),
                1 => format!("{{\"op\":\"eval\",\"id\":{id}"),
                _ => "\u{1}\u{2}garbage".to_owned(),
            },
            expect_ok: false,
            kinds: &["bad_request"],
            unparseable: true,
        },
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nml-serve-chaos-{}-{tag}.sock", std::process::id()))
}

fn spawn_server(tag: &str, cfg: ServeConfig) -> (PathBuf, std::thread::JoinHandle<ServerReport>) {
    let path = socket_path(tag);
    let handle = {
        let path = path.clone();
        std::thread::spawn(move || serve(SRC, &path, &cfg).expect("server runs"))
    };
    (path, handle)
}

/// One client connection: pipelines its scenarios in windows, collects
/// every response, and returns them keyed by id (unparseable frames
/// under the `None` key, counted).
fn run_client(path: &Path, scenarios: &[Scenario]) -> HashMap<Option<i64>, Vec<Json>> {
    let mut client = Client::connect_retry(path, Duration::from_secs(10)).expect("connect");
    let mut responses: HashMap<Option<i64>, Vec<Json>> = HashMap::new();
    // A modest pipeline window: enough overlap to interleave with the
    // other clients, small enough that the bounded queue (cap 64)
    // admits everything — shedding is exercised by its own test below.
    for window in scenarios.chunks(4) {
        for s in window {
            client.send_line(&s.line).expect("send");
        }
        for _ in window {
            let line = client
                .recv_line()
                .expect("recv")
                .expect("server kept the connection open");
            let v = nml_escape_analysis::serve::json::parse(&line).expect("valid response JSON");
            let id = v.get("id").and_then(Json::as_int);
            responses.entry(id).or_default().push(v);
        }
    }
    responses
}

#[test]
fn chaos_storm_every_request_gets_exactly_one_response() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 24; // 96 seeded scenarios in total
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 64,
        max_depth: Some(20_000),
        ..ServeConfig::default()
    };
    let (path, server) = spawn_server("storm", cfg);

    // Deterministic per-client scripts; ids are globally unique.
    let scripts: Vec<Vec<Scenario>> = (0..CLIENTS)
        .map(|c| {
            let mut rng = Rng(0xc0ffee ^ (c as u64) << 32);
            (0..PER_CLIENT)
                .map(|i| scenario((c * 1000 + i) as i64, &mut rng))
                .collect()
        })
        .collect();

    let all_responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| s.spawn(|| run_client(&path, script)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let mut ok_seen = 0u64;
    let mut panic_seen = 0u64;
    for (script, responses) in scripts.iter().zip(&all_responses) {
        let unparseable = script.iter().filter(|s| s.unparseable).count();
        let null_responses = responses.get(&None).map_or(0, Vec::len);
        assert_eq!(
            null_responses, unparseable,
            "every unparseable frame got exactly one id:null response"
        );
        for resp in responses.get(&None).into_iter().flatten() {
            assert_eq!(resp.get("kind").and_then(Json::as_str), Some("bad_request"));
        }
        for s in script.iter().filter(|s| !s.unparseable) {
            let got = responses.get(&Some(s.id)).map_or(&[][..], Vec::as_slice);
            assert_eq!(
                got.len(),
                1,
                "request {} must get exactly one terminal response, got {got:?}",
                s.id
            );
            let resp = &got[0];
            match resp.get("status").and_then(Json::as_str) {
                Some("ok") => {
                    ok_seen += 1;
                    assert!(s.expect_ok, "unexpected success for {}: {resp}", s.line);
                }
                Some("error") => {
                    let kind = resp.get("kind").and_then(Json::as_str).unwrap_or("?");
                    assert!(
                        s.kinds.contains(&kind),
                        "scenario {} expected one of {:?}, got {resp}",
                        s.line,
                        s.kinds
                    );
                    if kind == "worker_panicked" {
                        panic_seen += 1;
                    }
                }
                other => panic!("response without a status ({other:?}): {resp}"),
            }
        }
    }

    // Clean exit: drain shutdown, server thread joins, counters agree.
    let mut closer = Client::connect_retry(&path, Duration::from_secs(5)).expect("closer");
    let resp = closer
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let report = server.join().expect("server joined");
    assert!(!path.exists(), "socket file removed on exit");
    assert_eq!(report.served_ok, ok_seen, "{report:?}");
    assert_eq!(report.panics, panic_seen, "{report:?}");
    assert!(panic_seen > 0, "the seed must actually inject panics");
    assert!(ok_seen > 0, "the seed must include healthy traffic");
    assert_eq!(report.shed, 0, "nothing shed at queue cap 64: {report:?}");
}

#[test]
fn overload_sheds_typed_responses_and_loses_nothing() {
    // Two slow workers, a queue of two: a burst of looping requests must
    // shed most of the burst as `overloaded` — and still answer every
    // single frame exactly once.
    const BURST: usize = 30;
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 2,
        ..ServeConfig::default()
    };
    let (path, server) = spawn_server("overload", cfg);
    let mut client = Client::connect_retry(&path, Duration::from_secs(10)).expect("connect");
    let mut batch = String::new();
    for id in 0..BURST {
        batch.push_str(&format!(
            "{{\"op\":\"eval\",\"id\":{id},\"call\":\"spin\",\"args\":[0],\"fuel\":2000000}}\n"
        ));
    }
    // One write: the reader admits/sheds the burst far faster than the
    // workers can drain it.
    client.send_line(batch.trim_end()).expect("burst");
    let mut counts: HashMap<i64, &str> = HashMap::new();
    let mut overloaded = 0;
    let mut exhausted = 0;
    for _ in 0..BURST {
        let line = client.recv_line().expect("recv").expect("open");
        let v = nml_escape_analysis::serve::json::parse(&line).expect("response JSON");
        let id = v.get("id").and_then(Json::as_int).expect("correlated");
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("overloaded") => {
                overloaded += 1;
                "overloaded"
            }
            Some("fuel_exhausted") => {
                exhausted += 1;
                "fuel_exhausted"
            }
            other => panic!("unexpected kind {other:?}: {v}"),
        };
        assert!(
            counts.insert(id, kind).is_none(),
            "duplicate response for {id}"
        );
    }
    assert_eq!(counts.len(), BURST, "every request answered exactly once");
    assert!(overloaded > 0, "the burst must overflow the queue");
    assert!(exhausted > 0, "admitted requests still complete");
    let resp = client
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let report = server.join().expect("server joined");
    assert_eq!(report.shed, overloaded as u64, "{report:?}");
    assert_eq!(report.guest_errors, exhausted as u64, "{report:?}");
}

#[test]
fn immediate_shutdown_cancels_in_flight_work() {
    // A guest that would run for minutes; `shutdown now` must cancel it
    // promptly with a typed response, then exit cleanly.
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (path, server) = spawn_server("now", cfg);
    let mut runner = Client::connect_retry(&path, Duration::from_secs(10)).expect("runner");
    runner
        .send_line(
            "{\"op\":\"eval\",\"id\":1,\"call\":\"spin\",\"args\":[0],\"fuel\":900000000000}",
        )
        .expect("long spin");
    // Give the worker a moment to pick the job up, then pull the plug
    // from a second connection.
    std::thread::sleep(Duration::from_millis(100));
    let mut closer = Client::connect_retry(&path, Duration::from_secs(5)).expect("closer");
    let resp = closer
        .request("{\"op\":\"shutdown\",\"mode\":\"now\"}")
        .expect("shutdown now");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let line = runner.recv_line().expect("recv").expect("open");
    let v = nml_escape_analysis::serve::json::parse(&line).expect("response JSON");
    assert_eq!(v.get("id").and_then(Json::as_int), Some(1));
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("cancelled"),
        "{v}"
    );
    let report = server.join().expect("server joined promptly");
    assert_eq!(report.guest_errors, 1, "{report:?}");
}

/// The source for the reload storm: revision `k` differs only in the
/// `pad` constant, so every revision answers the eval traffic with the
/// same values — an eval landing on either side of a swap is correct
/// either way, which is what lets the storm assert exact results.
fn revision(k: usize) -> String {
    format!(
        "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
  sum l = if (null l) then 0 else car l + sum (cdr l);
  pad n = n + {k}
in rev [1, 2, 3]"
    )
}

#[test]
fn reload_storm_swaps_epochs_under_load_without_losing_a_response() {
    use nml_escape_analysis::serve::{replay, CrashBundle};

    const RELOADS: usize = 8;
    const EVAL_CLIENTS: usize = 3;
    const EVALS_PER_CLIENT: usize = 40;
    const PANICS: usize = 3;

    let crash_dir = std::env::temp_dir().join(format!(
        "nml-serve-chaos-{}-reload.crashes",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&crash_dir);
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 64,
        crash_dir: Some(crash_dir.clone()),
        crash_ring_cap: 64,
        ..ServeConfig::default()
    };
    let path = socket_path("reload-storm");
    let boot = revision(0);
    let server = {
        let path = path.clone();
        let cfg = cfg.clone();
        std::thread::spawn(move || serve(&boot, &path, &cfg).expect("server runs"))
    };
    drop(Client::connect_retry(&path, Duration::from_secs(10)).expect("up"));

    std::thread::scope(|s| {
        // The reload storm: 8 valid revisions with 2 broken edits
        // interleaved, all racing the eval traffic below.
        s.spawn(|| {
            let mut c = Client::connect_retry(&path, Duration::from_secs(5)).expect("reloader");
            for k in 1..=RELOADS {
                let req = Json::Obj(vec![
                    ("op".to_owned(), Json::Str("reload".to_owned())),
                    ("id".to_owned(), Json::Int(9000 + k as i64)),
                    ("src".to_owned(), Json::Str(revision(k))),
                ]);
                let resp = c.request(&req.to_string()).expect("reload");
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "valid revision {k} must swap: {resp}"
                );
                if k == 3 || k == 6 {
                    let req = Json::Obj(vec![
                        ("op".to_owned(), Json::Str("reload".to_owned())),
                        ("id".to_owned(), Json::Int(9100 + k as i64)),
                        (
                            "src".to_owned(),
                            Json::Str("letrec broken = in broken".to_owned()),
                        ),
                    ]);
                    let resp = c.request(&req.to_string()).expect("broken reload");
                    assert_eq!(
                        resp.get("kind").and_then(Json::as_str),
                        Some("compile_error"),
                        "broken edits must be rejected: {resp}"
                    );
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        // Panic traffic racing the swaps: each one must be answered,
        // recorded as a crash bundle, and must not take an epoch down.
        s.spawn(|| {
            let mut c = Client::connect_retry(&path, Duration::from_secs(5)).expect("panicker");
            for i in 0..PANICS {
                let resp = c
                    .request(&format!(
                        "{{\"op\":\"eval\",\"id\":{},\"call\":\"rev\",\"args\":[[9,8,7]],\
                         \"fault\":{{\"panic_at_alloc\":2}}}}",
                        8000 + i
                    ))
                    .expect("panic eval");
                assert_eq!(
                    resp.get("kind").and_then(Json::as_str),
                    Some("worker_panicked"),
                    "{resp}"
                );
                std::thread::sleep(Duration::from_millis(8));
            }
        });

        // Steady eval traffic across every revision boundary.
        for t in 0..EVAL_CLIENTS {
            let path = &path;
            s.spawn(move || {
                let mut c = Client::connect_retry(path, Duration::from_secs(5)).expect("eval");
                let mut epochs_seen = Vec::new();
                for i in 0..EVALS_PER_CLIENT {
                    let id = (t * 1000 + i) as i64;
                    let (line, want) = if i % 2 == 0 {
                        (
                            format!("{{\"op\":\"eval\",\"id\":{id}}}"),
                            "[3, 2, 1]",
                        )
                    } else {
                        (
                            format!(
                                "{{\"op\":\"eval\",\"id\":{id},\"call\":\"sum\",\"args\":[[1,2,3,4]]}}"
                            ),
                            "10",
                        )
                    };
                    let resp = c.request(&line).expect("eval");
                    assert_eq!(resp.get("id").and_then(Json::as_int), Some(id), "{resp}");
                    assert_eq!(
                        resp.get("result").and_then(Json::as_str),
                        Some(want),
                        "an eval must be answered by a coherent epoch: {resp}"
                    );
                    let epoch = resp.get("epoch").and_then(Json::as_int).expect("epoch tag");
                    assert!(
                        (1..=(RELOADS as i64 + 1)).contains(&epoch),
                        "epoch {epoch} out of range: {resp}"
                    );
                    epochs_seen.push(epoch);
                }
                // Admission order is monotone per connection: once this
                // client is answered from epoch N, no later response may
                // come from a retired (older) epoch.
                for w in epochs_seen.windows(2) {
                    assert!(w[1] >= w[0], "response from a retired epoch: {epochs_seen:?}");
                }
            });
        }
    });

    let mut closer = Client::connect_retry(&path, Duration::from_secs(5)).expect("closer");
    let resp = closer
        .request("{\"op\":\"shutdown\",\"mode\":\"drain\"}")
        .expect("shutdown");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let report = server.join().expect("server joined");

    assert_eq!(report.reloads_ok, RELOADS as u64, "{report:?}");
    assert_eq!(report.reloads_failed, 2, "{report:?}");
    assert_eq!(
        report.epochs_retired, RELOADS as u64,
        "every replaced epoch drains and retires: {report:?}"
    );
    assert_eq!(report.epoch_leaks, 0, "no request may vanish: {report:?}");
    assert_eq!(report.panics, PANICS as u64, "{report:?}");
    assert_eq!(
        report.served_ok,
        (EVAL_CLIENTS * EVALS_PER_CLIENT) as u64,
        "{report:?}"
    );

    // Every injected panic left a replayable bundle, and each bundle
    // replays deterministically: two runs, identical reports.
    assert_eq!(report.crash_bundles, PANICS as u64, "{report:?}");
    let mut bundles: Vec<_> = std::fs::read_dir(&crash_dir)
        .expect("crash dir")
        .map(|e| e.expect("entry").path())
        .collect();
    bundles.sort();
    assert_eq!(bundles.len(), PANICS, "one bundle per panic: {bundles:?}");
    for p in &bundles {
        let bundle = CrashBundle::load(p).expect("bundle parses");
        assert_eq!(bundle.kind, "worker_panicked", "{p:?}");
        let r1 = replay(&bundle).expect("replay");
        let r2 = replay(&bundle).expect("replay again");
        assert!(r1.reproduced, "bundle must reproduce: {r1:?}");
        assert_eq!(r1, r2, "replay must be deterministic");
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
}
