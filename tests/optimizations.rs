//! End-to-end correctness and effectiveness of the three storage
//! optimizations, including GC-stress and region-validation runs.
//!
//! Every optimized program must (a) compute the same answer as the
//! baseline, (b) show the predicted shift in the allocation/reclamation
//! statistics, and (c) survive `validate_regions` — a full reachability
//! proof at every region exit that no freed cell was still live.

use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::opt::{
    annotate_stack, block_call, lower_program, reuse_variant, IrProgram, ReuseOptions,
};
use nml_escape_analysis::runtime::{HeapConfig, Interp, InterpConfig, RuntimeStats, Value};
use nml_escape_analysis::syntax::Symbol;

const REV_SRC: &str = "letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3]";

fn rev_ir_with_variants() -> (IrProgram, Symbol, Symbol) {
    let analysis = analyze_source(REV_SRC).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    let append_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )
    .expect("append_r");
    let rev_r = reuse_variant(
        &mut ir,
        &analysis,
        Symbol::intern("rev"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )
    .expect("rev_r");
    (ir, Symbol::intern("rev"), rev_r)
}

fn stress_config() -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: 48,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        ..Default::default()
    }
}

fn run_rev(ir: &IrProgram, func: Symbol, n: i64, config: InterpConfig) -> (Vec<i64>, RuntimeStats) {
    let mut interp = Interp::with_config(ir, config).expect("interp");
    let input: Vec<i64> = (0..n).collect();
    let l = interp.make_int_list(&input);
    let result = interp.call(func, vec![l]).expect("call");
    let out = interp.read_int_list(result).expect("int list");
    (out, interp.heap.stats)
}

#[test]
fn reuse_preserves_results_and_eliminates_spine_allocs() {
    let (ir, rev, rev_r) = rev_ir_with_variants();
    let n = 60;
    let (base_out, base_stats) = run_rev(&ir, rev, n, InterpConfig::default());
    let (opt_out, opt_stats) = run_rev(&ir, rev_r, n, InterpConfig::default());
    assert_eq!(base_out, opt_out);
    let expect: Vec<i64> = (0..n).rev().collect();
    assert_eq!(base_out, expect);
    // Baseline: the input (n cells) plus O(n²) append churn.
    assert!(base_stats.heap_allocs > (n as u64) * (n as u64) / 2);
    // Reuse: only the n input cells; every spine cons became a DCONS.
    assert_eq!(
        opt_stats.heap_allocs, n as u64,
        "only the input is allocated"
    );
    assert!(opt_stats.dcons_reuses >= (n as u64) * (n as u64) / 2);
}

#[test]
fn reuse_survives_gc_stress() {
    // Regression: a GC during DCONS argument evaluation must treat the
    // reused cell as live even though no variable references it anymore.
    let (ir, rev, rev_r) = rev_ir_with_variants();
    let (base_out, _) = run_rev(&ir, rev, 80, stress_config());
    let (opt_out, opt_stats) = run_rev(&ir, rev_r, 80, stress_config());
    assert_eq!(base_out, opt_out);
    assert!(opt_stats.gc_runs > 0 || opt_stats.heap_allocs < 100);
}

#[test]
fn stack_allocation_moves_spine_out_of_heap() {
    let src = "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
               in sum [1, 2, 3, 4, 5]";
    let analysis = analyze_source(src).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);

    let mut base = Interp::new(&ir).expect("interp");
    let base_v = base.run().expect("run");
    assert!(matches!(base_v, Value::Int(15)));
    assert_eq!(base.heap.stats.heap_allocs, 5);

    let annotated = annotate_stack(&mut ir, &analysis);
    assert_eq!(annotated, 1);
    let mut opt = Interp::with_config(&ir, stress_config()).expect("interp");
    let opt_v = opt.run().expect("run");
    assert!(matches!(opt_v, Value::Int(15)));
    assert_eq!(opt.heap.stats.heap_allocs, 0);
    assert_eq!(opt.heap.stats.stack_allocs, 5);
    assert_eq!(opt.heap.stats.stack_freed, 5);
    assert_eq!(opt.heap.stats.reclamation_work(), 0, "no GC, no splices");
}

#[test]
fn stack_allocation_validated_under_region_checking() {
    // validate_regions proves at pop time that nothing in the region is
    // reachable — i.e. the escape analysis was right.
    let src = "letrec len l = if (null l) then 0 else 1 + len (cdr l)
               in len [[1, 2], [3], []]";
    let analysis = analyze_source(src).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    annotate_stack(&mut ir, &analysis);
    let mut interp = Interp::with_config(&ir, stress_config()).expect("interp");
    let v = interp.run().expect("validated run");
    assert!(matches!(v, Value::Int(3)));
}

#[test]
fn block_reclamation_replaces_gc_sweeps_of_producer_spine() {
    let src = "letrec
  sum l = if (null l) then 0 else car l + sum (cdr l);
  create_list n = if n = 0 then nil else cons n (create_list (n - 1))
in sum (create_list 100)";
    let analysis = analyze_source(src).expect("analysis");
    let base_ir = lower_program(&analysis.program, &analysis.info);

    let config = InterpConfig {
        heap: HeapConfig {
            gc_threshold: 32,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        ..Default::default()
    };

    let mut base = Interp::with_config(&base_ir, config.clone()).expect("interp");
    let base_v = base.run().expect("run");
    assert!(matches!(base_v, Value::Int(5050)));
    assert!(
        base.heap.stats.gc_runs > 0,
        "baseline must GC at this threshold"
    );

    let mut blk_ir = base_ir.clone();
    block_call(
        &mut blk_ir,
        &analysis,
        Symbol::intern("sum"),
        Symbol::intern("create_list"),
    )
    .expect("block transform");
    let mut blk = Interp::with_config(&blk_ir, config).expect("interp");
    let blk_v = blk.run().expect("run");
    assert!(matches!(blk_v, Value::Int(5050)));
    assert_eq!(blk.heap.stats.block_allocs, 100, "spine went to the block");
    assert_eq!(blk.heap.stats.block_freed, 100);
    assert_eq!(blk.heap.stats.block_frees, 1, "one splice frees everything");
    assert_eq!(
        blk.heap.stats.gc_swept, 0,
        "the GC never reclaims a single cell in block mode"
    );
}

#[test]
fn unsound_annotation_is_caught_by_validation() {
    // Hand-build an IR that stack-allocates a cell that escapes:
    // idl l = l, called on a stack-allocated literal. The validator must
    // reject the region pop.
    use nml_escape_analysis::opt::{AllocMode, IrExpr, RegionKind, SiteId};
    use nml_escape_analysis::syntax::Const;

    let src = "letrec idl l = l in idl [1]";
    let analysis = analyze_source(src).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    // Forcibly (and wrongly) wrap the body call in a stack region with a
    // stack-allocated argument.
    let bad_arg = IrExpr::Cons {
        alloc: AllocMode::Stack,
        head: Box::new(IrExpr::Const(Const::Int(1))),
        tail: Box::new(IrExpr::Const(Const::Nil)),
        site: SiteId(9_000),
    };
    let call = IrExpr::App(
        Box::new(IrExpr::Var(Symbol::intern("idl"))),
        Box::new(bad_arg),
    );
    ir.body = IrExpr::Region {
        kind: RegionKind::Stack,
        inner: Box::new(call),
        site: SiteId(9_001),
    };
    let mut interp = Interp::with_config(&ir, stress_config()).expect("interp");
    let err = interp
        .run()
        .expect_err("escaping region cell must be caught");
    assert!(matches!(
        err,
        nml_escape_analysis::runtime::RuntimeError::EscapedRegionCell { .. }
    ));
}

#[test]
fn auto_reuse_rewrites_and_preserves_results() {
    // The §6 driver end to end: variants generated, the unshared
    // producer chain rewritten, results identical, allocations reduced.
    let src = "letrec take n l = if n = 0 then nil
                                 else if (null l) then nil
                                 else cons (car l) (take (n - 1) (cdr l));
                      rev l a = if (null l) then a
                                else rev (cdr l) (cons (car l) a)
               in rev (take 3 [1, 2, 3, 4, 5]) nil";
    let analysis = analyze_source(src).expect("analysis");
    let ir0 = lower_program(&analysis.program, &analysis.info);
    let mut base = Interp::new(&ir0).expect("interp");
    let base_v = base.run().expect("run");
    let base_out = base.read_int_list(base_v).expect("ints");
    assert_eq!(base_out, vec![3, 2, 1]);

    let mut ir = ir0.clone();
    let auto = nml_escape_analysis::opt::auto_reuse(&mut ir, &analysis);
    assert!(auto.rewritten_calls >= 1, "{}", ir.body);
    assert!(auto.variants.len() >= 2, "take and rev both get variants");
    let mut opt = Interp::with_config(&ir, stress_config()).expect("interp");
    let opt_v = opt.run().expect("run");
    let opt_out = opt.read_int_list(opt_v).expect("ints");
    assert_eq!(base_out, opt_out);
    assert!(opt.heap.stats.dcons_reuses > 0);
    assert!(opt.heap.stats.heap_allocs < base.heap.stats.heap_allocs);
}

#[test]
fn auto_reuse_is_sound_on_shared_arguments() {
    // `second (cons 0 l) l` style sharing: the body uses l again after
    // passing it — the driver must not reuse a shared argument. Here the
    // *same list* feeds two calls; only fresh constructions or unshared
    // producer results are rewritten, so `use_twice` keeps both answers
    // correct.
    let src = "letrec rev l a = if (null l) then a
                                else rev (cdr l) (cons (car l) a);
                      sum l = if (null l) then 0 else car l + sum (cdr l);
                      use_twice l = sum (rev l nil) + sum l
               in use_twice [1, 2, 3]";
    let analysis = analyze_source(src).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    let base_out = {
        let mut i = Interp::new(&ir).expect("interp");
        let v = i.run().expect("run");
        matches!(v, Value::Int(12)).then_some(12).expect("6 + 6")
    };
    let auto = nml_escape_analysis::opt::auto_reuse(&mut ir, &analysis);
    // The call inside use_twice is in a function body (caller-dependent
    // sharing) — never rewritten; the literal at the main call is the
    // only candidate, and use_twice has no eligible variant param
    // licensed for reuse of a *shared-later* list... run and compare.
    let mut i = Interp::with_config(&ir, stress_config()).expect("interp");
    let v = i.run().expect("run");
    assert!(
        matches!(v, Value::Int(n) if n == base_out),
        "auto_reuse changed the result ({auto:?})"
    );
}

#[test]
fn full_pass_manager_is_sound_and_effective() {
    let src = "letrec
      sum l = if (null l) then 0 else car l + sum (cdr l);
      create_list n = if n = 0 then nil else cons n (create_list (n - 1));
      rev l a = if (null l) then a
                else rev (cdr l) (cons (car l) a)
    in sum (rev (create_list 40) nil) + sum [1, 2, 3]";
    let analysis = analyze_source(src).expect("analysis");
    let base_ir = lower_program(&analysis.program, &analysis.info);
    let mut base = Interp::new(&base_ir).expect("interp");
    let base_v = base.run().expect("run");

    let mut ir = base_ir.clone();
    let summary = nml_escape_analysis::opt::optimize(
        &mut ir,
        &analysis,
        &nml_escape_analysis::opt::OptOptions::default(),
    );
    assert!(summary.reuse.as_ref().unwrap().rewritten_calls >= 1);
    assert!(summary.stack_calls >= 1);
    let mut opt = Interp::with_config(&ir, stress_config()).expect("interp");
    let opt_v = opt.run().expect("validated optimized run");
    match (base_v, opt_v) {
        (Value::Int(a), Value::Int(b)) => assert_eq!(a, b),
        other => panic!("expected ints, got {other:?}"),
    }
    assert!(opt.heap.stats.dcons_reuses > 0);
    assert!(opt.heap.stats.stack_allocs > 0);
    assert!(
        opt.heap.stats.heap_allocs < base.heap.stats.heap_allocs,
        "optimizations reduce heap allocation"
    );
}

#[test]
fn reuse_after_stack_annotation_is_the_documented_hazard() {
    // The pass manager runs reuse BEFORE stack allocation. This test
    // demonstrates why: applying them in the reverse order rewrites a
    // call whose (stack-allocated) argument becomes the result — and the
    // region validator catches the escaping cells at pop time.
    let src = "letrec
      rev l a = if (null l) then a
                else rev (cdr l) (cons (car l) a);
      keepsum p = car p
    in keepsum (rev [1, 2, 3] nil)";
    let analysis = analyze_source(src).expect("analysis");
    let mut ir = lower_program(&analysis.program, &analysis.info);
    // WRONG ORDER on purpose: stack first, then reuse.
    let stacked = annotate_stack(&mut ir, &analysis);
    assert!(stacked >= 1, "the literal argument gets a region");
    let auto = nml_escape_analysis::opt::auto_reuse(&mut ir, &analysis);
    assert!(
        auto.rewritten_calls >= 1,
        "reuse (unsoundly) rewrites inside the region: {}",
        ir.body
    );
    let mut interp = Interp::with_config(&ir, stress_config()).expect("interp");
    let err = interp.run().expect_err("validator must catch the aliasing");
    assert!(
        matches!(
            err,
            nml_escape_analysis::runtime::RuntimeError::EscapedRegionCell { .. }
                | nml_escape_analysis::runtime::RuntimeError::UseAfterFree { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn optimized_variants_compose() {
    // Reuse + stack allocation on the same program: rev_r of a
    // stack-allocated literal is INVALID (rev_r destructively returns the
    // input cells — they escape). The analysis knows: rev's parameter has
    // retained top spine, but the *result of rev_r aliases the argument*,
    // so stack-allocating an argument to rev_r would be wrong. Our
    // annotate_stack never sees rev_r (it has no summary), so the
    // combination is safe by construction; this test pins that.
    let (mut ir, _rev, rev_r) = rev_ir_with_variants();
    let analysis = analyze_source(REV_SRC).expect("analysis");
    let annotated = annotate_stack(&mut ir, &analysis);
    // The literal [1,2,3] feeds `rev` in the body; rev does not let the
    // spine escape, so 1 call site annotates...
    assert_eq!(annotated, 1);
    // ...but rev_r call sites are never annotated (no summary for it).
    let mut interp = Interp::with_config(&ir, stress_config()).expect("interp");
    let input = interp.make_int_list(&[1, 2, 3]);
    let out = interp.call(rev_r, vec![input]).expect("rev_r runs");
    assert_eq!(interp.read_int_list(out).unwrap(), vec![3, 2, 1]);
}
