//! On-disk summary-cache robustness: a corrupted cache file — truncated,
//! bit-flipped, or outright garbage — must never panic, never poison an
//! analysis, and must salvage every entry whose own checksum still
//! verifies. The cache is an accelerator, not a source of truth: the
//! worst corruption can do is cost a re-analysis.

use nml_escape_analysis::escape::cache::SummaryCache;
use nml_escape_analysis::escape::{
    analyze_source_scheduled, Analysis, Budget, EngineConfig, PolyMode, ScheduleOptions,
};
use std::path::{Path, PathBuf};

const SRC: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
  idl l = if (null l) then nil else cons (car l) (idl (cdr l))
in rev (idl [1, 2, 3])";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nml-cacherob-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn scheduled(src: &str, cache: &Path) -> Analysis {
    let options = ScheduleOptions {
        summary_cache: Some(cache.to_path_buf()),
        ..ScheduleOptions::default()
    };
    analyze_source_scheduled(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        Budget::unlimited(),
        &options,
    )
    .expect("scheduled analysis")
}

fn assert_same_summaries(label: &str, a: &Analysis, b: &Analysis) {
    assert_eq!(
        a.summaries, b.summaries,
        "{label}: summaries diverge after cache corruption"
    );
}

/// A bit-flipped byte in the middle of the file drops at most the entry
/// it lands in; the warm run still completes, reports the salvage on
/// `cache_errors`, and reproduces the cold run's summaries exactly.
#[test]
fn bit_flip_salvages_and_agrees() {
    let dir = tmp_dir("flip");
    let path = dir.join("summaries.cache");
    let cold = scheduled(SRC, &path);
    assert!(cold.schedule.cache_errors.is_empty());
    assert!(cold.schedule.scc_count >= 3, "{:?}", cold.schedule);

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let warm = scheduled(SRC, &path);
    assert!(
        !warm.schedule.cache_errors.is_empty(),
        "corruption must be reported: {:?}",
        warm.schedule
    );
    assert!(
        warm.schedule
            .cache_errors
            .iter()
            .any(|e| e.contains("salvaged")),
        "warning names the salvage: {:?}",
        warm.schedule.cache_errors
    );
    // The undamaged entries still hit; only the corrupted one re-analyzes.
    assert!(
        warm.schedule.cache_hits >= 1,
        "uncorrupted entries must survive: {:?}",
        warm.schedule
    );
    assert!(
        warm.schedule.sccs_solved < warm.schedule.scc_count,
        "salvage must not force a full cold start: {:?}",
        warm.schedule
    );
    assert_same_summaries("bit flip", &cold, &warm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated file (lost tail, no trailer) salvages the complete
/// entries, flags the file checksum failure, and completes the analysis.
#[test]
fn truncation_salvages_prefix_and_agrees() {
    let dir = tmp_dir("trunc");
    let path = dir.join("summaries.cache");
    let cold = scheduled(SRC, &path);

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let warm = scheduled(SRC, &path);
    assert!(
        !warm.schedule.cache_errors.is_empty(),
        "truncation must be reported: {:?}",
        warm.schedule
    );
    assert_same_summaries("truncation", &cold, &warm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A file that isn't a summary cache at all (or is a future format
/// version) is ignored with a warning — cold start, no panic — and the
/// save path then replaces it with a valid cache.
#[test]
fn garbage_file_starts_cold_then_heals() {
    let dir = tmp_dir("garbage");
    let path = dir.join("summaries.cache");
    std::fs::write(&path, "nml-summary-cache v999\nscc feedbeef\n").unwrap();

    let first = scheduled(SRC, &path);
    assert!(
        first
            .schedule
            .cache_errors
            .iter()
            .any(|e| e.contains("ignoring cache")),
        "version mismatch must be surfaced: {:?}",
        first.schedule.cache_errors
    );
    assert_eq!(
        first.schedule.sccs_solved, first.schedule.scc_count,
        "garbage cache forces a clean cold start"
    );

    // The run rewrote the file; a second run is fully warm and clean.
    let second = scheduled(SRC, &path);
    assert!(
        second.schedule.cache_errors.is_empty(),
        "{:?}",
        second.schedule
    );
    assert_eq!(second.schedule.sccs_solved, 0);
    assert_same_summaries("healed cache", &first, &second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Saving is atomic (write-to-temp + rename): after a run, the cache
/// directory holds exactly the cache file and its persistent advisory
/// `.lock` sibling — no orphaned temporaries.
#[test]
fn atomic_save_leaves_no_temp_files() {
    let dir = tmp_dir("atomic");
    let path = dir.join("summaries.cache");
    let _ = scheduled(SRC, &path);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["summaries.cache", "summaries.cache.lock"],
        "stray files: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exhaustive single-bit-flip sweep over the raw format: for every byte
/// of a real cache file, flipping one bit must load without panicking,
/// and whatever entries survive must be ones whose checksums verify.
#[test]
fn every_single_bit_flip_loads_without_panic() {
    let dir = tmp_dir("sweep");
    let path = dir.join("summaries.cache");
    let _ = scheduled(SRC, &path);
    let pristine = std::fs::read(&path).unwrap();
    let (reference, warning) = SummaryCache::load(&path);
    assert!(warning.is_none());
    let total = reference.len();
    assert!(total >= 3);

    let flipped = dir.join("flipped.cache");
    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0x01;
        std::fs::write(&flipped, &bytes).unwrap();
        let (cache, warning) = SummaryCache::load(&flipped);
        assert!(
            cache.len() <= total,
            "offset {i}: corruption cannot invent entries"
        );
        if cache.len() < total || warning.is_some() {
            assert!(
                warning.is_some(),
                "offset {i}: dropped entries must be reported"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
