//! The SCC-modular scheduler must be *observationally identical* to the
//! legacy whole-program driver: same summaries, same sharing conclusions,
//! in serial and in parallel, cold and warm cache. The slot/memo
//! equations form a deterministic monotone system, so any engine that
//! materializes the keys a query reaches computes the same converged
//! values — these tests check that claim on the full corpus, on the
//! paper's Appendix A program, and on a generated-program sweep.

use nml_escape_analysis::corpus;
use nml_escape_analysis::escape::{
    analyze_program_whole_program, analyze_source_scheduled, unshared_from_summary, Analysis, Be,
    Budget, EngineConfig, EscapeSummary, PolyMode, ScheduleOptions,
};
use nml_escape_analysis::syntax::{parse_program, Symbol};
use nml_escape_analysis::types::infer_program;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The legacy whole-program analysis (one engine, one global fixpoint).
fn whole_program(src: &str) -> Analysis {
    let program = parse_program(src).expect("parse");
    let info = infer_program(&program).expect("infer");
    analyze_program_whole_program(program, info, EngineConfig::default(), Budget::unlimited())
        .expect("whole-program analysis")
}

/// The SCC-modular analysis with explicit scheduling options.
fn scheduled(src: &str, options: &ScheduleOptions) -> Analysis {
    analyze_source_scheduled(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        Budget::unlimited(),
        options,
    )
    .expect("scheduled analysis")
}

/// The suite's default mode: serial, unless `NML_TEST_JOBS` asks for a
/// worker count (CI runs the whole suite once per mode).
fn serial() -> ScheduleOptions {
    let jobs = std::env::var("NML_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ScheduleOptions {
        jobs,
        ..ScheduleOptions::default()
    }
}

fn jobs4() -> ScheduleOptions {
    ScheduleOptions {
        jobs: 4,
        ..ScheduleOptions::default()
    }
}

/// Asserts two analyses agree on every summary and every derived sharing
/// conclusion (Theorem 2's unshared-result-spine count).
fn assert_equivalent(label: &str, reference: &Analysis, candidate: &Analysis) {
    let r: &BTreeMap<Symbol, EscapeSummary> = &reference.summaries;
    let c: &BTreeMap<Symbol, EscapeSummary> = &candidate.summaries;
    assert_eq!(
        r.keys().collect::<Vec<_>>(),
        c.keys().collect::<Vec<_>>(),
        "{label}: summary key sets differ"
    );
    for (name, rs) in r {
        let cs = &c[name];
        assert_eq!(rs, cs, "{label}: summary of `{name}` differs");
        assert_eq!(
            unshared_from_summary(rs),
            unshared_from_summary(cs),
            "{label}: sharing conclusion for `{name}` differs"
        );
    }
}

/// Every corpus workload: whole-program ≡ SCC-serial ≡ SCC-parallel.
#[test]
fn corpus_scc_modular_matches_whole_program() {
    for w in corpus::ALL {
        let reference = whole_program(w.source);
        let ser = scheduled(w.source, &serial());
        let par = scheduled(w.source, &jobs4());
        assert_equivalent(&format!("{} (serial)", w.name), &reference, &ser);
        assert_equivalent(&format!("{} (jobs=4)", w.name), &reference, &par);
        assert!(
            ser.fully_precise() && par.fully_precise(),
            "{}: unlimited budget must not degrade",
            w.name
        );
        assert!(ser.schedule.scc_count >= 1, "{}", w.name);
        assert_eq!(par.schedule.jobs, 4, "{}", w.name);
    }
}

/// The paper's Appendix A.1 lattice values and A.2 sharing conclusions
/// hold under the modular scheduler, serial and parallel.
#[test]
fn appendix_a_holds_under_scheduling() {
    for options in [serial(), jobs4()] {
        let a = scheduled(corpus::PARTITION_SORT.source, &options);

        // A.1: G(APPEND, 1) = ⟨1,0⟩; G(APPEND, 2) = ⟨1,1⟩
        let append = a.summary("append").unwrap();
        assert_eq!(append.param(0).verdict, Be::escaping(0));
        assert_eq!(append.param(1).verdict, Be::escaping(1));

        // A.1: G(SPLIT, 1..4) = ⟨0,0⟩, ⟨1,0⟩, ⟨1,1⟩, ⟨1,1⟩
        let split = a.summary("split").unwrap();
        assert_eq!(split.param(0).verdict, Be::bottom());
        assert_eq!(split.param(1).verdict, Be::escaping(0));
        assert_eq!(split.param(2).verdict, Be::escaping(1));
        assert_eq!(split.param(3).verdict, Be::escaping(1));

        // A.1: G(PS, 1) = ⟨1,0⟩
        let ps = a.summary("ps").unwrap();
        assert_eq!(ps.param(0).verdict, Be::escaping(0));

        // A.2: the top result spine of PS and SPLIT is unshared.
        assert_eq!(unshared_from_summary(ps), 1);
        assert_eq!(unshared_from_summary(split), 1);

        // The schedule saw the real call-graph shape: `append` and
        // `split` are independent (wave 1); `ps` needs both (wave 2).
        assert_eq!(a.schedule.scc_count, 3);
        assert_eq!(a.schedule.wave_count, 2);
        assert_eq!(a.schedule.sccs_solved, 3);
    }
}

/// A warm summary cache re-analyzes *zero* unchanged SCCs and reproduces
/// the cold run's summaries exactly.
#[test]
fn warm_cache_solves_nothing_and_agrees() {
    let dir = std::env::temp_dir().join(format!("nml-equiv-cache-{}", std::process::id()));
    for (i, w) in corpus::ALL.iter().enumerate() {
        let path = dir.join(format!("{i}.cache"));
        let with_cache = ScheduleOptions {
            summary_cache: Some(path.clone()),
            ..serial()
        };
        let cold = scheduled(w.source, &with_cache);
        assert!(cold.schedule.cache_errors.is_empty(), "{}", w.name);
        assert_eq!(
            cold.schedule.sccs_solved, cold.schedule.scc_count,
            "{}: cold run solves everything",
            w.name
        );
        let warm = scheduled(w.source, &with_cache);
        assert!(warm.schedule.cache_errors.is_empty(), "{}", w.name);
        assert_eq!(
            warm.schedule.sccs_solved, 0,
            "{}: warm run must re-analyze nothing",
            w.name
        );
        assert_eq!(
            warm.schedule.cache_hits, warm.schedule.scc_count,
            "{}: every SCC hits",
            w.name
        );
        assert_equivalent(&format!("{} (warm cache)", w.name), &cold, &warm);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm run must not rewrite the cache file: nothing was inserted, and
/// the serialize+rename costs more than the warm analysis itself (this
/// was the warm-slower-than-cold regression in the analysis bench).
#[test]
fn warm_cache_does_not_rewrite_the_file() {
    let path = std::env::temp_dir().join(format!("nml-equiv-rewrite-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let options = ScheduleOptions {
        summary_cache: Some(path.clone()),
        ..serial()
    };
    let src = corpus::ALL[0].source;
    let cold = scheduled(src, &options);
    assert!(cold.schedule.cache_errors.is_empty());
    let cold_meta = std::fs::metadata(&path).expect("cold run wrote the cache");
    let cold_mtime = cold_meta.modified().expect("mtime");
    let warm = scheduled(src, &options);
    assert_eq!(warm.schedule.sccs_solved, 0, "fully warm");
    let warm_meta = std::fs::metadata(&path).expect("cache still present");
    assert_eq!(
        warm_meta.modified().expect("mtime"),
        cold_mtime,
        "warm run rewrote the cache file"
    );
    let _ = std::fs::remove_file(&path);
}

/// Editing a callee invalidates its dependents too (the content hash is
/// transitive), while an untouched independent function stays cached.
#[test]
fn cache_invalidation_is_transitive() {
    let v1 = "letrec
      append x y = if (null x) then y else cons (car x) (append (cdr x) y);
      rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
      idl l = if (null l) then nil else cons (car l) (idl (cdr l))
    in rev (idl [1, 2, 3])";
    // Same program with `append`'s base case rewritten: `append` and its
    // dependent `rev` must re-analyze; `idl` must not.
    let v2 = "letrec
      append x y = if (null x) then (copy y) else cons (car x) (append (cdr x) y);
      copy l = if (null l) then nil else cons (car l) (copy (cdr l));
      rev l = if (null l) then nil else append (rev (cdr l)) (cons (car l) nil);
      idl l = if (null l) then nil else cons (car l) (idl (cdr l))
    in rev (idl [1, 2, 3])";
    let path = std::env::temp_dir().join(format!("nml-equiv-inval-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let options = ScheduleOptions {
        summary_cache: Some(path.clone()),
        ..serial()
    };
    let first = scheduled(v1, &options);
    assert_eq!(first.schedule.cache_misses, first.schedule.scc_count);
    let second = scheduled(v2, &options);
    // v2 has four SCCs: append+copy's SCCs and `rev` miss (changed or
    // downstream of a change); `idl` is byte-identical with no changed
    // dependencies and must hit.
    assert!(
        second.schedule.cache_hits >= 1,
        "unchanged `idl` SCC must hit: {:?}",
        second.schedule
    );
    assert!(
        second.schedule.cache_misses >= 3,
        "`append`, `copy`, and `rev` must miss: {:?}",
        second.schedule
    );
    let reference = whole_program(v2);
    assert_equivalent("edited program (partial cache)", &reference, &second);
    let _ = std::fs::remove_file(&path);
}

/// Generated-program sweep: the same prelude/strategy family as the
/// fault-tolerance harness, checked for whole ≡ serial ≡ parallel.
const PRELUDE: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  revon l a = if (null l) then a else revon (cdr l) (cons (car l) a);
  take n l = if n = 0 then nil
             else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  drop n l = if n = 0 then l
             else if (null l) then nil
             else drop (n - 1) (cdr l);
  copy l = if (null l) then nil else cons (car l) (copy (cdr l));
  incall l = if (null l) then nil else cons ((car l) + 1) (incall (cdr l));
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l);
  len l = if (null l) then 0 else 1 + len (cdr l)
in ";

fn leaf() -> BoxedStrategy<String> {
    prop_oneof![
        proptest::collection::vec(0i64..9, 0..5).prop_map(|xs| {
            let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }),
        (0u32..6).prop_map(|k| format!("(mklist {k})")),
    ]
    .boxed()
}

fn list_expr() -> BoxedStrategy<String> {
    leaf().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("(copy {e})")),
            inner.clone().prop_map(|e| format!("(incall {e})")),
            inner.clone().prop_map(|e| format!("(revon {e} nil)")),
            (0u32..4, inner.clone()).prop_map(|(k, e)| format!("(take {k} {e})")),
            (0u32..4, inner.clone()).prop_map(|(k, e)| format!("(drop {k} {e})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("(append {a} {b})")),
        ]
    })
}

fn program() -> BoxedStrategy<String> {
    prop_oneof![
        list_expr().prop_map(|e| format!("{PRELUDE}{e}")),
        list_expr().prop_map(|e| format!("{PRELUDE}(sum {e})")),
        list_expr().prop_map(|e| format!("{PRELUDE}(len {e})")),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_programs_agree_across_schedulers(src in program()) {
        let reference = whole_program(&src);
        let ser = scheduled(&src, &serial());
        let par = scheduled(&src, &jobs4());
        assert_equivalent("generated (serial)", &reference, &ser);
        assert_equivalent("generated (jobs=4)", &reference, &par);
    }
}

/// Seeds the corpusgen sweeps cover. `NML_CORPUS_CASES` overrides (CI's
/// corpus-scaling job and quick local runs tune it).
fn corpus_cases(default: u64) -> u64 {
    std::env::var("NML_CORPUS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The corpusgen seed sweep: 256 seeded well-typed programs, rotating
/// through every generator topology, each checked for
/// whole-program ≡ SCC-serial ≡ SCC-jobs4. Unlike the proptest sweep
/// above, these programs have *deep synthetic call graphs* (chains,
/// rings, fan-in clusters), so the scheduler's batching and stealing
/// paths are exercised, not just leaf SCCs.
#[test]
fn corpusgen_seed_sweep_agrees_across_schedulers() {
    let shapes = ["chain:10", "wide:10", "scc:8x4", "mixed:12/4"];
    for seed in 0..corpus_cases(256) {
        let spec = shapes[(seed % shapes.len() as u64) as usize];
        let shape = nml_corpusgen::parse_shape(spec).expect("shape spec");
        let src = nml_corpusgen::generate(seed, &shape).source();
        let label = format!("corpusgen {spec} seed {seed}");
        let reference = whole_program(&src);
        let ser = scheduled(&src, &serial());
        let par = scheduled(&src, &jobs4());
        assert_equivalent(&format!("{label} (serial)"), &reference, &ser);
        assert_equivalent(&format!("{label} (jobs=4)"), &reference, &par);
        assert!(
            ser.fully_precise() && par.fully_precise(),
            "{label}: unlimited budget must not degrade"
        );
        assert_eq!(
            ser.schedule.sccs_solved, ser.schedule.scc_count,
            "{label}: cold run solves every SCC"
        );
    }
}
