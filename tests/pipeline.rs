//! Whole-pipeline integration over the corpus: every workload parses,
//! pretty-print round-trips, type-checks, analyzes, monomorphizes,
//! lowers, and runs — and the monomorphized program computes the same
//! value as the original.

use nml_escape_analysis::corpus;
use nml_escape_analysis::escape::analyze_source;
use nml_escape_analysis::opt::lower_program;
use nml_escape_analysis::pipeline::{compile, compile_with_stack_alloc, run, run_with};
use nml_escape_analysis::runtime::{HeapConfig, Interp, InterpConfig};
use nml_escape_analysis::syntax::{parse_program, pretty_program};
use nml_escape_analysis::types::{infer_and_monomorphize, infer_program};

#[test]
fn corpus_parses_and_types() {
    for w in corpus::ALL {
        let p =
            parse_program(w.source).unwrap_or_else(|e| panic!("{} does not parse: {e}", w.name));
        let info = infer_program(&p).unwrap_or_else(|e| panic!("{} does not type: {e}", w.name));
        for f in w.functions {
            assert!(
                info.top_sigs
                    .contains_key(&nml_escape_analysis::syntax::Symbol::intern(f)),
                "{}: function {f} missing",
                w.name
            );
        }
    }
}

#[test]
fn corpus_pretty_print_roundtrips() {
    for w in corpus::ALL {
        let p1 = parse_program(w.source).expect("parse");
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", w.name));
        assert_eq!(
            p1.bindings.len(),
            p2.bindings.len(),
            "{}: binding count changed",
            w.name
        );
        // The round-tripped program must type-check to the same
        // signatures.
        let i1 = infer_program(&p1).expect("infer 1");
        let i2 = infer_program(&p2).expect("infer 2");
        for (name, sig) in &i1.top_sigs {
            assert_eq!(
                Some(sig),
                i2.top_sigs.get(name),
                "{}: signature of {name} changed after round trip",
                w.name
            );
        }
    }
}

#[test]
fn corpus_analyzes_with_summaries_for_all_functions() {
    for w in corpus::ALL {
        let a =
            analyze_source(w.source).unwrap_or_else(|e| panic!("{} does not analyze: {e}", w.name));
        for f in w.functions {
            assert!(
                a.summary(f).is_some(),
                "{}: no escape summary for {f}",
                w.name
            );
        }
    }
}

#[test]
fn corpus_runs_to_a_value() {
    for w in corpus::ALL {
        let c = compile(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let out = run(&c.ir).unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
        assert!(!out.result.is_empty(), "{}: empty result", w.name);
    }
}

#[test]
fn monomorphized_corpus_computes_identical_results() {
    for w in corpus::ALL {
        let p = parse_program(w.source).expect("parse");
        let info = infer_program(&p).expect("infer");
        let base_ir = lower_program(&p, &info);
        let mut base = Interp::new(&base_ir).expect("interp");
        let base_v = base.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let base_text =
            nml_escape_analysis::pipeline::render_value(&base, &base_v).expect("render");

        let mono = infer_and_monomorphize(&p).expect("mono");
        let mono_ir = lower_program(&mono.program, &mono.info);
        let mut m = Interp::new(&mono_ir).expect("interp");
        let mono_v = m.run().unwrap_or_else(|e| panic!("{} (mono): {e}", w.name));
        let mono_text = nml_escape_analysis::pipeline::render_value(&m, &mono_v).expect("render");

        assert_eq!(
            base_text, mono_text,
            "{}: monomorphization changed the result",
            w.name
        );
    }
}

#[test]
fn corpus_runs_under_gc_pressure() {
    let config = InterpConfig {
        heap: HeapConfig {
            gc_threshold: 16,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        ..Default::default()
    };
    for w in corpus::ALL {
        let c = compile(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let base = run(&c.ir).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let stressed = run_with(&c.ir, config.clone())
            .unwrap_or_else(|e| panic!("{} under GC pressure: {e}", w.name));
        assert_eq!(
            base.result, stressed.result,
            "{}: GC changed the program's result",
            w.name
        );
    }
}

#[test]
fn corpus_stack_allocation_never_changes_results() {
    let config = InterpConfig {
        heap: HeapConfig {
            gc_threshold: 16,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        ..Default::default()
    };
    for w in corpus::ALL {
        let base = run(&compile(w.source).unwrap().ir).unwrap();
        let stacked_ir = compile_with_stack_alloc(w.source).unwrap().ir;
        let stacked = run_with(&stacked_ir, config.clone())
            .unwrap_or_else(|e| panic!("{} with stack allocation: {e}", w.name));
        assert_eq!(
            base.result, stacked.result,
            "{}: stack allocation changed the result",
            w.name
        );
    }
}

#[test]
fn corpus_full_optimization_never_changes_results() {
    // The whole pass manager (reuse → block → stack) over every workload,
    // under GC pressure with region validation: results must be
    // untouched.
    let config = InterpConfig {
        heap: HeapConfig {
            gc_threshold: 16,
            gc_enabled: true,
            checked: false,
            ..HeapConfig::default()
        },
        validate_regions: true,
        ..Default::default()
    };
    for w in corpus::ALL {
        let base = run(&compile(w.source).unwrap().ir).unwrap();
        let optimized_ir = nml_escape_analysis::pipeline::compile_optimized(w.source)
            .unwrap()
            .ir;
        let optimized = run_with(&optimized_ir, config.clone())
            .unwrap_or_else(|e| panic!("{} fully optimized: {e}", w.name));
        assert_eq!(
            base.result, optimized.result,
            "{}: the pass manager changed the result",
            w.name
        );
    }
}

#[test]
fn shipped_programs_run_under_every_nmlc_mode() {
    let exe = env!("CARGO_BIN_EXE_nmlc");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("programs dir exists") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("nml") {
            continue;
        }
        count += 1;
        for mode in [
            vec!["check"],
            vec!["analyze"],
            vec!["analyze", "--report"],
            vec!["run"],
            vec!["run", "--stack-alloc"],
            vec!["run", "--auto-reuse"],
            vec!["run", "-O"],
        ] {
            let mut cmd = std::process::Command::new(exe);
            cmd.arg(mode[0]).arg(&path);
            for a in &mode[1..] {
                cmd.arg(a);
            }
            let out = cmd.output().expect("nmlc runs");
            assert!(
                out.status.success(),
                "nmlc {mode:?} {} failed:\n{}",
                path.display(),
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
    assert!(
        count >= 5,
        "expected the shipped .nml programs, found {count}"
    );
}

#[test]
fn nmlc_binary_smoke() {
    // Drive the driver end to end through a temp file.
    let dir = std::env::temp_dir();
    let path = dir.join("nmlc_smoke_test.nml");
    std::fs::write(
        &path,
        "letrec append x y = if (null x) then y
                             else cons (car x) (append (cdr x) y)
         in append [1] [2, 3]",
    )
    .expect("write temp file");
    let exe = env!("CARGO_BIN_EXE_nmlc");
    for (args, needle) in [
        (vec!["check"], "append : forall"),
        (vec!["fmt"], "append x y = if"),
        (vec!["analyze"], "G = <1,0>"),
        (vec!["analyze", "--report"], "optimization report"),
        (vec!["ir"], "(cons (car x)"),
        (vec!["run", "--stats"], "[1, 2, 3]"),
        (vec!["run", "--stack-alloc", "--stats"], "stack"),
        (vec!["run", "--auto-reuse", "--stats"], "dcons-reuse"),
        (vec!["run", "--profile"], "hottest allocation sites"),
    ] {
        let mut cmd = std::process::Command::new(exe);
        cmd.arg(args[0]).arg(&path);
        for a in &args[1..] {
            cmd.arg(a);
        }
        let out = cmd.output().expect("nmlc runs");
        assert!(out.status.success(), "nmlc {args:?} failed: {out:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(needle),
            "nmlc {args:?}: expected {needle:?} in output:\n{text}"
        );
    }
}
