//! GC-under-pressure differential suite for the generational heap.
//!
//! Every test here runs with a deliberately tiny nursery (1–4 KiB, a
//! few dozen cells) so that ordinary list workloads overflow it dozens
//! of times per run — a promotion storm. The claims:
//!
//! 1. **Engine agreement.** Tree-walker and bytecode VM produce the
//!    same value under nursery pressure, for plain, fully optimized,
//!    and checked programs. Collection policy is a pure function of
//!    heap state, so a wrong write barrier or a missed remembered-set
//!    root shows up as a value divergence or a reclaimed-live-cell
//!    crash here.
//! 2. **Promotion actually happens.** Each pressured run reports
//!    `minor_gcs > 0` and `promoted > 0` — the suite is exercising the
//!    generational machinery, not silently running in the old
//!    single-space mode.
//! 3. **Checked mode survives promotion.** Tombstone claims ride
//!    through minor collections: a sabotaged stack claim is detected
//!    and attributed to the *correct* site even when the cell was
//!    promoted to the old space before its frame popped.
//! 4. **Pretenuring routes escaping sites to the old space.** With the
//!    full pass manager on, provably-escaping builder sites allocate
//!    old directly (`stats.pretenured > 0`) and therefore never pay a
//!    nursery visit.
//!
//! Scheduling follows `NML_TEST_JOBS` like the equivalence suite.

use nml_escape_analysis::escape::{Budget, PolyMode, ScheduleOptions};
use nml_escape_analysis::opt::{body_cons_sites, SabotagePlan};
use nml_escape_analysis::pipeline::{
    compile_optimized_scheduled, compile_scheduled, run_checked, run_with_engine, CheckedOptions,
};
use nml_escape_analysis::runtime::{Engine, HeapConfig, InterpConfig};

const PRELUDE: &str = "letrec
  append x y = if (null x) then y else cons (car x) (append (cdr x) y);
  revon l a = if (null l) then a else revon (cdr l) (cons (car l) a);
  take n l = if n = 0 then nil
             else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  copy l = if (null l) then nil else cons (car l) (copy (cdr l));
  incall l = if (null l) then nil else cons ((car l) + 1) (incall (cdr l));
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l)
in ";

/// Allocation-heavy bodies: each churns hundreds of cells through a
/// nursery that holds a few dozen, with live data threaded across the
/// churn so minor collections always have survivors to promote.
const WORKLOADS: &[&str] = &[
    "(sum (revon (mklist 300) nil))",
    "(sum (append (mklist 120) (incall (mklist 120))))",
    "(sum (take 60 (copy (mklist 200))))",
    "(sum (append (revon (mklist 90) nil) (take 45 (mklist 90))))",
];

fn sched() -> ScheduleOptions {
    let jobs = std::env::var("NML_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ScheduleOptions {
        jobs,
        ..ScheduleOptions::default()
    }
}

/// A pressured generational config: `nursery_kb` KiB of nursery and a
/// small major threshold so both collection kinds fire.
fn pressured(nursery_kb: usize) -> InterpConfig {
    InterpConfig {
        heap: HeapConfig {
            gc_threshold: 256,
            nursery_kb,
            ..HeapConfig::default()
        },
        ..InterpConfig::default()
    }
}

/// The unpressured, unoptimized tree-walking oracle.
fn oracle(src: &str) -> String {
    let c = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    run_with_engine(&c.ir, InterpConfig::default(), Engine::Tree)
        .expect("oracle run")
        .result
}

/// Plain (unoptimized) programs: both engines agree with the
/// unpressured oracle under 1, 2, and 4 KiB nurseries, and every
/// pressured run actually collects and promotes.
#[test]
fn engines_agree_under_tiny_nursery_plain() {
    for body in WORKLOADS {
        let src = format!("{PRELUDE}{body}");
        let want = oracle(&src);
        let c = compile_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        for nursery_kb in [1, 2, 4] {
            for engine in [Engine::Tree, Engine::Vm] {
                let out = run_with_engine(&c.ir, pressured(nursery_kb), engine)
                    .unwrap_or_else(|e| panic!("{body} @ {nursery_kb}KiB {engine:?}: {e}"));
                assert_eq!(out.result, want, "{body} @ {nursery_kb}KiB {engine:?}");
                assert!(
                    out.stats.minor_gcs > 0,
                    "{body} @ {nursery_kb}KiB {engine:?}: no minor GCs — nursery never filled"
                );
                assert!(
                    out.stats.promoted > 0,
                    "{body} @ {nursery_kb}KiB {engine:?}: nothing promoted — no survivors?"
                );
            }
        }
    }
}

/// Fully optimized programs (reuse → block → stack → pretenure) under
/// the same promotion storms: regions, reuse cells, and pretenured
/// cells all interleave with minor collections.
#[test]
fn engines_agree_under_tiny_nursery_optimized() {
    for body in WORKLOADS {
        let src = format!("{PRELUDE}{body}");
        let want = oracle(&src);
        let c = compile_optimized_scheduled(
            &src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
        )
        .expect("front end");
        for nursery_kb in [1, 4] {
            for engine in [Engine::Tree, Engine::Vm] {
                let out = run_with_engine(&c.ir, pressured(nursery_kb), engine)
                    .unwrap_or_else(|e| panic!("{body} @ {nursery_kb}KiB {engine:?}: {e}"));
                assert_eq!(out.result, want, "{body} @ {nursery_kb}KiB {engine:?}");
            }
        }
    }
}

/// Checked mode (tombstoning heap, claim stamps) under nursery
/// pressure: transparent — same value, zero violations — on both
/// engines, even though stack retreats, region frees, and promotions
/// interleave.
#[test]
fn checked_mode_is_transparent_under_tiny_nursery() {
    for body in WORKLOADS {
        let src = format!("{PRELUDE}{body}");
        let want = oracle(&src);
        for engine in [Engine::Tree, Engine::Vm] {
            let opts = CheckedOptions {
                engine,
                ..CheckedOptions::default()
            };
            let (out, _) = run_checked(
                &src,
                PolyMode::SimplestInstance,
                Budget::unlimited(),
                &sched(),
                &opts,
                &pressured(1),
            )
            .expect("checked run");
            assert_eq!(out.result, want, "{body} {engine:?}");
            assert_eq!(out.stats.violations, 0, "{body} {engine:?}");
            assert_eq!(out.attempts, 1, "{body} {engine:?}");
            assert!(!out.degraded_unoptimized, "{body} {engine:?}");
        }
    }
}

/// The tombstone-claim-survives-promotion scenario, pinned end to end.
///
/// The literal `[7, 8, 9]` is evaluated *first* (left-to-right argument
/// order) and stays live while `mklist 400` churns ~400 cells through a
/// ~21-cell nursery — so its cells are promoted to the old space by a
/// minor collection long before the body's frame pops. Sabotaged stack
/// claims then tombstone those *old* cells at frame exit; the renderer
/// trips the claims, and each violation must still be attributed to the
/// exact sabotaged site. Promotion is a flag flip, not a move — the
/// claim stamp rides along, and this test fails if it ever doesn't.
#[test]
fn tombstoned_claim_survives_promotion_and_attributes_correctly() {
    let src = "letrec
  mklist n = if n = 0 then nil else cons n (mklist (n - 1));
  sum l = if (null l) then 0 else (car l) + sum (cdr l);
  keepfirst l burn = l
in keepfirst [7, 8, 9] (sum (mklist 400))";
    let want = oracle(src);
    assert_eq!(want, "[7, 8, 9]");
    let compiled = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let sites = body_cons_sites(&compiled.ir);
    assert_eq!(sites.len(), 3, "the literal's three cons cells");
    for engine in [Engine::Tree, Engine::Vm] {
        // Locality passes off: the optimizer would (correctly) prove the
        // churn list region-local, and region cells never enter the
        // nursery — the storm must flow through young space for this
        // test to promote the literal before its frame pops.
        let opts = CheckedOptions {
            max_retries: 8,
            sabotage: SabotagePlan::stack(sites.clone()),
            engine,
            opt: nml_escape_analysis::opt::OptOptions {
                reuse: false,
                block: false,
                stack: false,
                pretenure: false,
                // SROA would *remove* the storm's allocations outright
                // (and desynchronize the engines' allocation sequences
                // under pressure); keep every cell real.
                sroa: false,
            },
            ..CheckedOptions::default()
        };
        let (out, _) = run_checked(
            src,
            PolyMode::SimplestInstance,
            Budget::unlimited(),
            &sched(),
            &opts,
            &pressured(1),
        )
        .expect("checked run recovers");
        assert_eq!(out.result, want, "{engine:?}");
        assert!(!out.degraded_unoptimized, "{engine:?}");
        assert_eq!(out.stats.violations, 3, "{engine:?}");
        assert!(
            out.stats.minor_gcs > 0 && out.stats.promoted > 0,
            "{engine:?}: the storm must actually promote (minor={} promoted={})",
            out.stats.minor_gcs,
            out.stats.promoted
        );
        let mut condemned: Vec<_> = out.quarantined.iter().map(|r| r.site).collect();
        condemned.sort_unstable();
        assert_eq!(
            condemned, sites,
            "{engine:?}: exactly the sabotaged sites, attributed across promotion"
        );
    }
}

/// Escape-informed pretenuring is visible in runtime stats: a builder
/// whose result provably escapes allocates its spine old-first, so the
/// pressured run reports pretenured cells and correspondingly fewer
/// promotions than the unhinted plain build of the same program.
#[test]
fn pretenuring_routes_escaping_sites_to_old_space() {
    let src = "letrec mklist n = if n = 0 then nil else cons n (mklist (n - 1))
               in mklist 200";
    let plain = compile_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    let opt = compile_optimized_scheduled(
        src,
        PolyMode::SimplestInstance,
        Budget::unlimited(),
        &sched(),
    )
    .expect("front end");
    for engine in [Engine::Tree, Engine::Vm] {
        let base = run_with_engine(&plain.ir, pressured(1), engine).expect("plain run");
        let tuned = run_with_engine(&opt.ir, pressured(1), engine).expect("optimized run");
        assert_eq!(base.result, tuned.result, "{engine:?}");
        assert_eq!(
            base.stats.pretenured, 0,
            "{engine:?}: plain build has no hints"
        );
        assert!(
            tuned.stats.pretenured >= 200,
            "{engine:?}: every spine cell routed old ({} pretenured)",
            tuned.stats.pretenured
        );
        assert!(
            tuned.stats.promoted < base.stats.promoted,
            "{engine:?}: pretenuring must cut promotion work ({} -> {})",
            base.stats.promoted,
            tuned.stats.promoted
        );
    }
}
