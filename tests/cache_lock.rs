//! Concurrent-writer robustness for the persistent summary cache.
//!
//! `SummaryCache::save` holds an advisory exclusive lock on a sibling
//! `.lock` file and merges the on-disk entries under it, so N writers —
//! threads in one process, or separate processes pointed at the same
//! `--summary-cache` — interleave per entry instead of clobbering each
//! other's files. These tests hammer both arrangements and assert that
//! no writer's entries are lost and the final file passes all of its
//! checksums.

use nml_escape_analysis::escape::cache::{CachedFn, CachedScc, SummaryCache};
use std::path::{Path, PathBuf};

const ENTRIES_PER_WRITER: u64 = 4;
const SAVES_PER_WRITER: u64 = 5;

fn entry(tag: u64, i: u64) -> (u64, CachedScc) {
    (
        tag * 1000 + i,
        CachedScc {
            fns: vec![CachedFn {
                name: format!("f{tag}_{i}"),
                verdicts: vec![(i.is_multiple_of(2), u32::try_from(i).unwrap())],
            }],
        },
    )
}

fn cache_of_writer(tag: u64) -> SummaryCache {
    let mut c = SummaryCache::default();
    for i in 0..ENTRIES_PER_WRITER {
        let (h, e) = entry(tag, i);
        c.insert(h, e);
    }
    c
}

fn fresh_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nml-cache-lock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn assert_all_present(path: &Path, writers: u64) {
    let (merged, warn) = SummaryCache::load(path);
    assert!(warn.is_none(), "clean load after the melee: {warn:?}");
    assert_eq!(
        merged.len() as u64,
        writers * ENTRIES_PER_WRITER,
        "every writer's entries survived"
    );
    for t in 0..writers {
        for i in 0..ENTRIES_PER_WRITER {
            let (h, e) = entry(t, i);
            assert_eq!(merged.get(h), Some(&e), "entry {t}/{i} intact");
        }
    }
}

#[test]
fn concurrent_threads_merge_instead_of_clobbering() {
    let path = fresh_path("threads.cache");
    const WRITERS: u64 = 8;
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let path = path.clone();
            s.spawn(move || {
                let c = cache_of_writer(t);
                // Repeated saves maximize read-merge-rename interleaving.
                for _ in 0..SAVES_PER_WRITER {
                    c.save(&path).expect("save");
                }
            });
        }
    });
    assert_all_present(&path, WRITERS);
}

/// The re-invoked half of the multi-process test below: a no-op under
/// the normal suite, a real cache writer when the parent sets the env.
#[test]
fn child_writer_process() {
    let Ok(tag) = std::env::var("NML_CACHE_LOCK_CHILD") else {
        return;
    };
    let path = PathBuf::from(std::env::var("NML_CACHE_LOCK_PATH").expect("child needs path env"));
    let tag: u64 = tag.parse().expect("numeric writer tag");
    let c = cache_of_writer(tag);
    for _ in 0..SAVES_PER_WRITER {
        c.save(&path).expect("child save");
    }
}

#[test]
fn concurrent_processes_merge_instead_of_clobbering() {
    let path = fresh_path("procs.cache");
    let exe = std::env::current_exe().expect("test binary path");
    const WRITERS: u64 = 4;
    let children: Vec<_> = (0..WRITERS)
        .map(|t| {
            std::process::Command::new(&exe)
                .args(["child_writer_process", "--exact", "--test-threads=1"])
                .env("NML_CACHE_LOCK_CHILD", t.to_string())
                .env("NML_CACHE_LOCK_PATH", &path)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn child writer")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("child exit");
        assert!(status.success(), "child writer failed: {status}");
    }
    assert_all_present(&path, WRITERS);
}
