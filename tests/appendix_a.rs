//! Integration reproduction of the paper's Appendix A, driven through
//! the public facade: every concrete lattice value in §A.1, the sharing
//! conclusions of §A.2, and the §A.3 transformations' shapes.

use nml_escape_analysis::corpus::PARTITION_SORT;
use nml_escape_analysis::escape::{analyze_source, unshared_from_summary, Be};
use nml_escape_analysis::opt::{lower_program, reuse_variant, ReuseOptions};
use nml_escape_analysis::syntax::Symbol;

#[test]
fn a1_global_escape_table() {
    let a = analyze_source(PARTITION_SORT.source).expect("analysis");

    // G(APPEND, 1) = ⟨1,0⟩; G(APPEND, 2) = ⟨1,1⟩
    let append = a.summary("append").unwrap();
    assert_eq!(append.param(0).verdict, Be::escaping(0));
    assert_eq!(append.param(1).verdict, Be::escaping(1));

    // G(SPLIT, 1..4) = ⟨0,0⟩, ⟨1,0⟩, ⟨1,1⟩, ⟨1,1⟩
    let split = a.summary("split").unwrap();
    assert_eq!(split.param(0).verdict, Be::bottom());
    assert_eq!(split.param(1).verdict, Be::escaping(0));
    assert_eq!(split.param(2).verdict, Be::escaping(1));
    assert_eq!(split.param(3).verdict, Be::escaping(1));

    // G(PS, 1) = ⟨1,0⟩
    let ps = a.summary("ps").unwrap();
    assert_eq!(ps.param(0).verdict, Be::escaping(0));
}

#[test]
fn a1_interpretation_of_results() {
    let a = analyze_source(PARTITION_SORT.source).expect("analysis");
    // "APPEND returns all of its second argument y, and all but the top
    //  spine of the first argument x."
    let append = a.summary("append").unwrap();
    assert_eq!(append.param(0).retained_spines(), 1);
    assert_eq!(append.param(1).retained_spines(), 0);
    // "SPLIT returns ... none of the first argument p"
    let split = a.summary("split").unwrap();
    assert!(!split.param(0).escapes());
    // "PS returns all but the top spine of its argument x."
    assert_eq!(a.summary("ps").unwrap().param(0).retained_spines(), 1);
}

#[test]
fn a2_sharing_conclusions() {
    let a = analyze_source(PARTITION_SORT.source).expect("analysis");
    // "the top spine of the result list of (PS e) is not shared"
    assert_eq!(unshared_from_summary(a.summary("ps").unwrap()), 1);
    // "the top spine of the result list of (SPLIT e1 e2 e3 e4) is not
    //  shared" (the result has two spines; only the bottom one may be).
    assert_eq!(unshared_from_summary(a.summary("split").unwrap()), 1);
    assert_eq!(a.summary("split").unwrap().result_ty.spines(), 2);
}

#[test]
fn a3_2_transformed_definitions_match_paper() {
    let a = analyze_source(PARTITION_SORT.source).expect("analysis");
    let mut ir = lower_program(&a.program, &a.info);
    let append_r = reuse_variant(
        &mut ir,
        &a,
        Symbol::intern("append"),
        &ReuseOptions::dcons(),
    )
    .unwrap();
    // APPEND' x y = if (null x) then y
    //               else DCONS x (car x) (APPEND' (cdr x) y)
    let text = ir.func(append_r).unwrap().body.to_string();
    assert_eq!(
        text,
        "(if (null x) then y else (DCONS x (car x) ((append_r (cdr x)) y)))"
    );

    // PS'' both redirects APPEND -> APPEND' and reuses x's head cell.
    let ps_r = reuse_variant(
        &mut ir,
        &a,
        Symbol::intern("ps"),
        &ReuseOptions {
            extra_rewrites: vec![(Symbol::intern("append"), append_r)],
            dcons: true,
            ..Default::default()
        },
    )
    .unwrap();
    let ps_text = ir.func(ps_r).unwrap().body.to_string();
    assert!(ps_text.contains("append_r"), "{ps_text}");
    assert!(ps_text.contains("DCONS x (car x)"), "{ps_text}");
}

#[test]
fn a1_fixpoint_iteration_counts_are_small() {
    // The appendix converges append in 2 Kleene iterations, split in 2,
    // ps in 2. The engine's counters aggregate over all seven global
    // tests (one per parameter), each of which seeds fresh memo entries,
    // so the total update count per binding is a small multiple of the
    // per-query iteration count — tens, never hundreds.
    let a = analyze_source(PARTITION_SORT.source).expect("analysis");
    for (name, updates) in &a.stats.updates_per_binding {
        assert!(
            *updates <= 100,
            "{name} took {updates} cache updates — fixpoint not converging briskly"
        );
    }
    assert!(
        a.stats.passes <= 64,
        "pass count exploded: {}",
        a.stats.passes
    );
}
