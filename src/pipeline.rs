//! One-call pipelines: source → analysis → optimized IR → instrumented
//! execution.
//!
//! These helpers glue the workspace crates together for the examples, the
//! `nmlc` driver, and the benchmark harness. Each step is also available
//! à la carte from the individual crates.

use nml_escape::{
    analyze_program_scheduled, analyze_source, analyze_source_governed, Analysis, AnalyzeError,
    Budget, EngineConfig, PolyMode, ScheduleOptions,
};
use nml_opt::{
    annotate_stack, apply_quarantine, lower_program, sabotage_elide, sabotage_stack, IrProgram,
    OptOptions, QuarantineSet, SabotagePlan, SiteId,
};
use nml_runtime::{
    Engine, Heap, Interp, InterpConfig, RuntimeError, RuntimeStats, SoundnessViolation, Value, Vm,
};
use nml_syntax::parse_program;
use nml_types::{infer_and_monomorphize, infer_program};
use std::fmt;
use std::path::PathBuf;

/// Everything the front half of the pipeline produces.
pub struct Compiled {
    /// The escape analysis (owns the program and type info).
    pub analysis: Analysis,
    /// The lowered, all-heap IR.
    pub ir: IrProgram,
}

/// Any pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// Front-end failure (syntax, types, analysis).
    Analyze(AnalyzeError),
    /// Execution failure.
    Runtime(RuntimeError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Analyze(e) => write!(f, "{e}"),
            PipelineError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<AnalyzeError> for PipelineError {
    fn from(e: AnalyzeError) -> Self {
        PipelineError::Analyze(e)
    }
}

impl From<RuntimeError> for PipelineError {
    fn from(e: RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

/// Parses, type-checks, analyzes, and lowers `src`.
///
/// # Errors
///
/// Returns [`PipelineError::Analyze`] for any front-end failure.
pub fn compile(src: &str) -> Result<Compiled, PipelineError> {
    let analysis = analyze_source(src)?;
    let ir = lower_program(&analysis.program, &analysis.info);
    Ok(Compiled { analysis, ir })
}

/// [`compile`] under an analysis resource [`Budget`]. On budget
/// exhaustion (or an engine fault) the affected functions are degraded to
/// sound worst-case summaries and the pipeline continues; the events are
/// in `compiled.analysis.degradations`.
///
/// # Errors
///
/// Syntax and type errors only — the analysis phase is total.
pub fn compile_governed(src: &str, budget: Budget) -> Result<Compiled, PipelineError> {
    let analysis = analyze_source_governed(
        src,
        PolyMode::SimplestInstance,
        EngineConfig::default(),
        budget,
    )?;
    let ir = lower_program(&analysis.program, &analysis.info);
    Ok(Compiled { analysis, ir })
}

/// [`compile_governed`] with explicit scheduling: worker threads per SCC
/// wave (`--jobs`) and an optional persistent summary cache
/// (`--summary-cache`). Serial with no cache is exactly
/// [`compile_governed`].
///
/// # Errors
///
/// Syntax and type errors only — the analysis phase is total.
pub fn compile_scheduled(
    src: &str,
    mode: PolyMode,
    budget: Budget,
    options: &ScheduleOptions,
) -> Result<Compiled, PipelineError> {
    let parsed = parse_program(src).map_err(AnalyzeError::from)?;
    let (program, info) = match mode {
        PolyMode::SimplestInstance => {
            let info = infer_program(&parsed).map_err(AnalyzeError::from)?;
            (parsed, info)
        }
        PolyMode::Monomorphize => {
            let mono = infer_and_monomorphize(&parsed).map_err(AnalyzeError::from)?;
            (mono.program, mono.info)
        }
    };
    let analysis =
        analyze_program_scheduled(program, info, EngineConfig::default(), budget, options)?;
    let ir = lower_program(&analysis.program, &analysis.info);
    Ok(Compiled { analysis, ir })
}

/// [`compile_scheduled`] followed by the full optimization pass manager.
///
/// # Errors
///
/// See [`compile_scheduled`].
pub fn compile_optimized_scheduled(
    src: &str,
    mode: PolyMode,
    budget: Budget,
    options: &ScheduleOptions,
) -> Result<Compiled, PipelineError> {
    let mut c = compile_scheduled(src, mode, budget, options)?;
    nml_opt::optimize(&mut c.ir, &c.analysis, &nml_opt::OptOptions::default());
    Ok(c)
}

/// [`compile_governed`] followed by the full optimization pass manager.
/// Degraded functions are skipped by every pass.
///
/// # Errors
///
/// See [`compile_governed`].
pub fn compile_optimized_governed(src: &str, budget: Budget) -> Result<Compiled, PipelineError> {
    let mut c = compile_governed(src, budget)?;
    nml_opt::optimize(&mut c.ir, &c.analysis, &nml_opt::OptOptions::default());
    Ok(c)
}

/// Parses, analyzes, lowers, and applies the (global-summary-driven)
/// stack-allocation pass.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_stack_alloc(src: &str) -> Result<Compiled, PipelineError> {
    let mut c = compile(src)?;
    annotate_stack(&mut c.ir, &c.analysis);
    Ok(c)
}

/// Parses, **monomorphizes**, analyzes, and lowers with the local-escape-
/// test-driven stack-allocation plan (paper §4.2): per-call precision, so
/// e.g. both spines of `map pair [[1,2],[3,4],[5,6]]`'s literal are
/// stacked, not just the top one.
///
/// # Errors
///
/// See [`compile`]; additionally surfaces analysis divergence from the
/// planner.
pub fn compile_with_local_stack_alloc(src: &str) -> Result<Compiled, PipelineError> {
    use nml_escape::{EngineConfig, PolyMode};
    let analysis =
        nml_escape::analyze_source_with(src, PolyMode::Monomorphize, EngineConfig::default())?;
    let plan = nml_opt::plan_stack_allocation(&analysis.program, &analysis.info)
        .map_err(|e| PipelineError::Analyze(nml_escape::AnalyzeError::Escape(e)))?;
    let ir = nml_opt::lower_program_with(&analysis.program, &analysis.info, &plan);
    Ok(Compiled { analysis, ir })
}

/// Parses, analyzes, lowers, and runs the §6 automatic in-place-reuse
/// driver: every eligible function gets a `DCONS` variant and every
/// main-body call with a provably unshared argument is redirected.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_auto_reuse(src: &str) -> Result<Compiled, PipelineError> {
    let mut c = compile(src)?;
    nml_opt::auto_reuse(&mut c.ir, &c.analysis);
    Ok(c)
}

/// Parses, analyzes, lowers, and runs the full optimization pass manager
/// (reuse → block → stack, the sound order).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_optimized(src: &str) -> Result<Compiled, PipelineError> {
    let mut c = compile(src)?;
    nml_opt::optimize(&mut c.ir, &c.analysis, &nml_opt::OptOptions::default());
    Ok(c)
}

/// The outcome of running a program: a printable result digest plus the
/// runtime statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Human-readable rendering of the result value.
    pub result: String,
    /// Instrumentation counters.
    pub stats: RuntimeStats,
}

/// Runs the IR's body and renders the result (int lists and scalars
/// render fully; other values render by kind). Uses the tree-walking
/// interpreter; [`run_with_engine`] selects an engine explicitly.
///
/// # Errors
///
/// Returns [`PipelineError::Runtime`] for any execution failure.
pub fn run(ir: &IrProgram) -> Result<RunOutcome, PipelineError> {
    run_with(ir, InterpConfig::default())
}

/// Runs the IR on the tree-walking interpreter with an explicit
/// configuration (the differential oracle path).
///
/// # Errors
///
/// See [`run`].
pub fn run_with(ir: &IrProgram, config: InterpConfig) -> Result<RunOutcome, PipelineError> {
    run_with_engine(ir, config, Engine::Tree)
}

/// Runs the IR on the selected execution engine. Both engines produce
/// identical results and errors; the VM is the production path, the
/// tree-walker the oracle. Allocation statistics agree too, unless the
/// IR carries [`nml_opt::AllocMode::Elided`] marks — the VM scalarizes
/// those sites away (`allocs_elided`) while the tree-walker, by design,
/// still allocates them.
///
/// # Errors
///
/// See [`run`].
pub fn run_with_engine(
    ir: &IrProgram,
    config: InterpConfig,
    engine: Engine,
) -> Result<RunOutcome, PipelineError> {
    match engine {
        Engine::Tree => {
            let mut interp = Interp::with_config(ir, config)?;
            let v = interp.run()?;
            let result = render_value_on(&interp.heap, &v)?;
            Ok(RunOutcome {
                result,
                stats: interp.heap.stats,
            })
        }
        Engine::Vm => {
            let mut vm = Vm::with_config(ir, config)?;
            let v = vm.run()?;
            let result = render_value_on(&vm.heap, &v)?;
            Ok(RunOutcome {
                result,
                stats: vm.heap.stats,
            })
        }
    }
}

/// Configuration for a checked-optimization run ([`run_checked`]).
#[derive(Debug, Clone)]
pub struct CheckedOptions {
    /// Re-executions allowed after violations before degrading to the
    /// fully unoptimized interpreter.
    pub max_retries: u32,
    /// Which optimization passes to run on each attempt.
    pub opt: OptOptions,
    /// Deliberate wrong-claim injection (tests, `--fault-unsound-stack`);
    /// empty by default.
    pub sabotage: SabotagePlan,
    /// Where to load/persist the quarantine set (`None` = in-memory
    /// only, starting empty).
    pub quarantine_path: Option<PathBuf>,
    /// Execution engine for every attempt, including the degraded
    /// unoptimized fallback run.
    pub engine: Engine,
}

impl Default for CheckedOptions {
    fn default() -> Self {
        CheckedOptions {
            max_retries: 8,
            opt: OptOptions::default(),
            sabotage: SabotagePlan::default(),
            quarantine_path: None,
            engine: Engine::default(),
        }
    }
}

/// One quarantined site and the evidence that condemned it.
#[derive(Debug, Clone)]
pub struct QuarantineRecord {
    /// The site whose optimization was disabled.
    pub site: SiteId,
    /// The violation that disproved the site's claim.
    pub violation: SoundnessViolation,
    /// Which attempt (0-based) detected it.
    pub attempt: u32,
}

/// The outcome of a checked run: the (verified) result plus the full
/// recovery history.
#[derive(Debug, Clone)]
pub struct CheckedOutcome {
    /// Rendering of the final result value.
    pub result: String,
    /// Stats of the successful attempt, with the recovery counters
    /// (`violations`, `quarantined_sites`, `retries`) aggregated across
    /// all attempts.
    pub stats: RuntimeStats,
    /// Every site quarantined during this run, in detection order.
    pub quarantined: Vec<QuarantineRecord>,
    /// Total attempts executed (1 = clean first run).
    pub attempts: u32,
    /// Whether the run had to fall back to the fully unoptimized
    /// interpreter (retries exhausted or an unattributable violation).
    pub degraded_unoptimized: bool,
}

/// The checked-optimization driver: compile with the full pass manager,
/// execute under the tombstoning heap, and on a [`SoundnessViolation`]
/// quarantine the offending site, re-plan with that site's optimization
/// disabled, and re-execute — up to `max_retries` times before degrading
/// to the fully unoptimized interpreter, which cannot violate (it makes
/// no claims).
///
/// The quarantine set persists across calls through
/// `opts.quarantine_path`, so a site disproved once stays disabled.
///
/// # Errors
///
/// [`PipelineError::Analyze`] for front-end failures;
/// [`PipelineError::Runtime`] only for *non-claim* runtime errors
/// (division by zero, step limits, fault-injected OOM) — claim
/// violations are consumed by the retry loop, never returned.
pub fn run_checked(
    src: &str,
    mode: PolyMode,
    budget: Budget,
    sched: &ScheduleOptions,
    opts: &CheckedOptions,
    base_config: &InterpConfig,
) -> Result<(CheckedOutcome, Compiled), PipelineError> {
    let (mut quarantine, quarantine_warning) = match &opts.quarantine_path {
        Some(p) => QuarantineSet::load(p),
        None => (QuarantineSet::new(), None),
    };
    if let Some(w) = quarantine_warning {
        eprintln!("warning: quarantine file: {w}");
    }
    let mut records: Vec<QuarantineRecord> = Vec::new();
    let mut violations = 0u64;
    let mut attempts = 0u32;
    let mut degraded = false;

    let (outcome, compiled) = loop {
        let attempt = attempts;
        attempts += 1;
        let mut compiled = compile_scheduled(src, mode, budget, sched)?;
        nml_opt::optimize(&mut compiled.ir, &compiled.analysis, &opts.opt);
        sabotage_stack(&mut compiled.ir, &opts.sabotage);
        sabotage_elide(&mut compiled.ir, &opts.sabotage);
        apply_quarantine(&mut compiled.ir, &quarantine);
        let mut config = base_config.clone();
        config.heap.checked = true;
        match run_with_engine(&compiled.ir, config, opts.engine) {
            Ok(out) => break (out, compiled),
            Err(PipelineError::Runtime(RuntimeError::Soundness(v))) => {
                violations += 1;
                let quarantinable = v
                    .site
                    .filter(|s| attempt < opts.max_retries && !quarantine.contains(*s));
                match quarantinable {
                    Some(site) => {
                        quarantine.insert(site);
                        records.push(QuarantineRecord {
                            site,
                            violation: *v,
                            attempt,
                        });
                    }
                    None => {
                        // Unattributable violation, repeat offender, or
                        // retries exhausted: degrade to the unoptimized
                        // interpreter, which makes no claims and so
                        // cannot violate.
                        if let Some(site) = v.site.filter(|_| attempt < opts.max_retries) {
                            // A quarantined site violated again — the
                            // fallback rewrite itself must be wrong;
                            // record it for the report before degrading.
                            records.push(QuarantineRecord {
                                site,
                                violation: *v,
                                attempt,
                            });
                        }
                        degraded = true;
                        attempts += 1;
                        let compiled = compile_scheduled(src, mode, budget, sched)?;
                        let out = run_with_engine(&compiled.ir, base_config.clone(), opts.engine)?;
                        break (out, compiled);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    };

    if let Some(p) = &opts.quarantine_path {
        if let Err(e) = quarantine.save(p) {
            eprintln!("warning: quarantine file: {e}");
        }
    }
    let mut stats = outcome.stats;
    stats.violations = violations;
    stats.quarantined_sites = records.len() as u64;
    stats.retries = attempts.saturating_sub(1).into();
    Ok((
        CheckedOutcome {
            result: outcome.result,
            stats,
            quarantined: records,
            attempts,
            degraded_unoptimized: degraded,
        },
        compiled,
    ))
}

/// Renders a value, chasing list structure through the heap. Works for
/// either engine — only the heap is consulted.
///
/// # Errors
///
/// Propagates heap access failures (dangling cells).
pub fn render_value_on(heap: &Heap<'_>, v: &Value<'_>) -> Result<String, RuntimeError> {
    fn go(heap: &Heap<'_>, v: &Value<'_>, out: &mut String) -> Result<(), RuntimeError> {
        match v {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Nil => out.push_str("[]"),
            Value::Tuple(c) => {
                out.push('(');
                let h = heap.car(*c)?;
                go(heap, &h, out)?;
                out.push_str(", ");
                let t = heap.cdr(*c)?;
                go(heap, &t, out)?;
                out.push(')');
            }
            Value::Pair(_) => {
                out.push('[');
                let mut cur = v.clone();
                let mut first = true;
                while let Value::Pair(c) = cur {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let head = heap.car(c)?;
                    go(heap, &head, out)?;
                    cur = heap.cdr(c)?;
                }
                out.push(']');
            }
            other => {
                out.push('<');
                out.push_str(other.kind());
                out.push('>');
            }
        }
        Ok(())
    }
    let mut out = String::new();
    go(heap, v, &mut out)?;
    Ok(out)
}

/// Renders a value against an interpreter's heap (kept for callers that
/// hold an [`Interp`]; see [`render_value_on`]).
///
/// # Errors
///
/// Propagates heap access failures (dangling cells).
pub fn render_value(interp: &Interp<'_>, v: &Value<'_>) -> Result<String, RuntimeError> {
    render_value_on(&interp.heap, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_run_quick() {
        let c = compile("letrec inc x = x + 1 in inc 41").unwrap();
        let out = run(&c.ir).unwrap();
        assert_eq!(out.result, "42");
    }

    #[test]
    fn run_renders_nested_lists() {
        let c = compile("[[1, 2], [3]]").unwrap();
        let out = run(&c.ir).unwrap();
        assert_eq!(out.result, "[[1, 2], [3]]");
    }

    #[test]
    fn stack_alloc_pipeline_reduces_heap_allocs() {
        let src = "letrec sum l = if (null l) then 0 else car l + sum (cdr l)
                   in sum [1, 2, 3, 4]";
        let plain = run(&compile(src).unwrap().ir).unwrap();
        let stacked = run(&compile_with_stack_alloc(src).unwrap().ir).unwrap();
        assert_eq!(plain.result, stacked.result);
        assert_eq!(plain.stats.heap_allocs, 4);
        assert_eq!(stacked.stats.heap_allocs, 0);
        assert_eq!(stacked.stats.stack_allocs, 4);
        assert_eq!(stacked.stats.stack_freed, 4);
    }

    #[test]
    fn local_stack_alloc_pipeline_stacks_nested_spines() {
        let src = "letrec
          pair x = cons (car x) (cons (car (cdr x)) nil);
          map f l = if (null l) then nil
                    else cons (f (car l)) (map f (cdr l))
        in map pair [[1,2],[3,4],[5,6]]";
        let base = run(&compile(src).unwrap().ir).unwrap();
        let local = run(&compile_with_local_stack_alloc(src).unwrap().ir).unwrap();
        assert_eq!(base.result, local.result);
        // 9 literal cells (3 top spine + 6 inner spines) go to the stack;
        // only pair's fresh result cells stay on the heap.
        assert_eq!(local.stats.stack_allocs, 9);
        assert_eq!(local.stats.stack_freed, 9);
        assert_eq!(base.stats.heap_allocs - local.stats.heap_allocs, 9);
    }

    #[test]
    fn errors_propagate() {
        assert!(matches!(compile("1 +"), Err(PipelineError::Analyze(_))));
        let c = compile("1 / 0").unwrap();
        assert!(matches!(run(&c.ir), Err(PipelineError::Runtime(_))));
    }
}
