//! `nmlc` — the nml driver: type checking, escape analysis, optimization
//! and instrumented execution from the command line.
//!
//! ```text
//! nmlc check <file>                  parse + infer, print signatures
//! nmlc analyze <file> [--mono]       escape analysis report
//! nmlc ir <file> [--stack-alloc]     print the lowered IR
//! nmlc run <file> [--stack-alloc] [--stats]
//! ```
//!
//! Every failure is a one-line (or rendered-span) diagnostic on stderr and
//! a non-zero exit code — never a panic or a backtrace. Analysis resource
//! budgets (`--max-passes=` etc.) degrade over-budget functions to the
//! sound worst-case summary `W^τ` and print a warning per degraded
//! function; `--strict` turns those warnings into errors.

use nml_escape_analysis::escape::{
    Analysis, AnalyzeError, Budget, EngineConfig, PolyMode, ScheduleOptions,
};
use nml_escape_analysis::opt::{OptOptions, SabotagePlan, SiteId};
use nml_escape_analysis::pipeline::{
    compile_optimized_scheduled, compile_scheduled, compile_with_local_stack_alloc, run_checked,
    run_with_engine, CheckedOptions, Compiled, PipelineError,
};
use nml_escape_analysis::runtime::{Engine, FaultPlan, FaultRate, InterpConfig};
use nml_escape_analysis::serve::json::Json;
use nml_escape_analysis::serve::proto::ErrorKind;
use nml_escape_analysis::serve::{
    minimize, render_report, replay, Client, CrashBundle, FileWatch, RetryPolicy, ServeConfig,
    DEFAULT_STEPS_PER_MS,
};
use nml_escape_analysis::syntax::{parse_program, SourceMap};
use nml_escape_analysis::types::infer_program;
use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

/// A command failure: a diagnostic for stderr plus the process exit
/// code. Most commands exit 1 on any failure; `call` and `replay` map
/// their outcomes onto distinct codes so scripts can branch on them.
struct Failure {
    code: u8,
    msg: String,
}

impl Failure {
    fn code(code: u8, msg: impl Into<String>) -> Failure {
        Failure {
            code,
            msg: msg.into(),
        }
    }
}

impl From<String> for Failure {
    fn from(msg: String) -> Failure {
        Failure { code: 1, msg }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result: Result<(), Failure> = match cmd {
        "check" => cmd_check(rest).map_err(Failure::from),
        "fmt" => cmd_fmt(rest).map_err(Failure::from),
        "analyze" => cmd_analyze(rest).map_err(Failure::from),
        "ir" => cmd_ir(rest).map_err(Failure::from),
        "run" => cmd_run(rest).map_err(Failure::from),
        "serve" => cmd_serve(rest).map_err(Failure::from),
        "call" => cmd_call(rest),
        "replay" => cmd_replay(rest),
        "gen-corpus" => cmd_gen_corpus(rest).map_err(Failure::from),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::from(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            if !f.msg.is_empty() {
                eprintln!("{}", f.msg);
            }
            ExitCode::from(f.code)
        }
    }
}

const USAGE: &str = "usage: nmlc <command> <file> [flags]

commands:
  check   <file>                 parse and type-check; print signatures
  fmt     <file>                 parse and pretty-print (canonical layout)
  analyze <file> [--mono] [--report]
                                 run the escape analysis; print G(f,i),
                                 retained spines, and sharing info
  ir      <file> [opt flags]     print the storage-annotated IR
  run     <file> [opt flags] [--stats]
                                 execute with the instrumented runtime
  serve   <file> [serve flags]   compile once (the full governed pipeline),
                                 then serve eval requests over newline-
                                 delimited JSON on a unix socket
  call    --socket=PATH [call flags]
                                 send one request to a running server
  replay  <bundle.json> [--minimize]
                                 re-execute a crash bundle from the serve
                                 flight recorder, in-process and
                                 deterministically; exit 0 iff the recorded
                                 outcome reproduces
  gen-corpus --seed=N --shape=S [--out=PATH]
                                 emit a deterministic well-typed synthetic
                                 program; shapes: chain | wide | scc[:RxS] |
                                 mixed[:N[/C]] | mega (2000 functions)

execution engine flags (run):
  --engine=vm          compile to bytecode and run on the slot-resolved
                       stack VM (the default)
  --engine=tree        run on the CEK tree-walking interpreter (the
                       differential oracle)

optimization flags (ir/run):
  -O, --optimize       the full pass manager: reuse -> block -> stack
  --stack-alloc        stack regions from the global escape test
  --local-stack-alloc  stack regions from the local test (monomorphizes first)
  --auto-reuse         DCONS variants + Theorem-2-guided call rewriting
  --sroa / --no-sroa   scalar replacement of cons cells the escape lattice
                       proves never-escaping and never-aliased: the bytecode
                       compiler re-verifies each site, puts head/tail in
                       frame slots, and elides the allocation (--stats shows
                       elided=N). Defaults on under --engine=vm, off under
                       --engine=tree (the tree-walking oracle never
                       scalarizes, so the mark is inert there)

analysis budget flags (analyze/ir/run; over-budget functions degrade to
the sound worst-case summary and a warning is printed):
  --max-passes=N       cap total fixpoint passes
  --max-nodes=N        cap total abstract-value nodes
  --deadline-ms=N      wall-clock deadline for the whole analysis
  --strict             treat any degradation as an error (non-zero exit)

analysis scheduling flags (analyze/ir/run):
  --jobs=N             solve independent call-graph SCCs on N worker
                       threads (0 = one per available core; default serial)
  --summary-cache=PATH reuse escape summaries across runs; only SCCs whose
                       code or dependencies changed are re-analyzed
  --watch              (analyze) keep running: re-read the file when it
                       changes and incrementally re-solve only the SCCs
                       whose transitive content hash moved

fault-injection flags (run; deterministic, seeded):
  --fault-seed=N           RNG seed for the probabilistic faults (default 0)
  --heap-capacity=N        fail program allocations beyond N live cells
  --fault-alloc-retreat=N/D  retreat optimized allocations to heap at rate N/D
  --fault-region-deny=N/D    refuse region pushes at rate N/D
  --fault-forced-gc=N/D      force a collection before allocations at rate N/D
  --fault-gc-at=i,j,...      force collections at exact allocation indices

checked-optimization flags (run):
  --checked                execute under the soundness sentinel: claim-freed
                           cells are tombstoned, a wrong claim is caught as a
                           violation, the offending site is quarantined, and
                           the program re-executes with that optimization off
  --max-retries=N          re-executions before degrading to the unoptimized
                           interpreter (default 8)
  --quarantine-file=PATH   persist the quarantine set across runs
  --fault-unsound-stack=i,j,...
                           deliberately inject wrong stack claims at the
                           given cons sites (sentinel demonstration)
  --fault-unsound-elide=i,j,...
                           deliberately force SROA elide marks at the given
                           cons sites; the bytecode compiler's re-check
                           refuses unsafe ones, so the run must stay silent
                           (license-not-obligation demonstration)

generational-heap flags (run/serve):
  --gen-gc=on|off      generational collection: allocate into a nursery,
                       scan only young cells at a minor GC, promote
                       survivors in place (default on); escape-proven
                       sites pretenure straight into the old space
  --nursery-kb=N       nursery size in KiB (default 256); a minor
                       collection runs when it fills

resource-limit flags (run; serve takes them as per-request defaults):
  --fuel=N             per-entry step budget; running out is a typed
                       fuel_exhausted error, not a hang
  --timeout-ms=N       wall-clock deadline, mapped to fuel by the
                       steps-per-millisecond calibration
  --max-depth=N        call-depth limit; deep non-tail recursion fails
                       with stack_overflow (tail calls are unaffected)

serve flags (serve also accepts -O/--no-optimize, --checked,
--max-retries, and the analysis budget/scheduling flags):
  --socket=PATH        unix socket path (default: <file>.sock)
  --workers=N          worker threads, one private heap each (default 4)
  --queue-cap=N        admission-queue bound; past it requests are shed
                       with a typed `overloaded` response (default 64)
  --steps-per-ms=N     deadline-to-fuel calibration (default 200000)
  --watch              poll the source file and hot-reload on change;
                       broken edits are rejected, the old epoch stays live
  --crash-dir=PATH|off crash-bundle ring directory (default:
                       <socket>.crashes; off disables the flight recorder)
  --crash-ring-cap=N   max bundles kept in the ring (default 16)
  --crash-escalate-after=N
                       repeats of one crash signature before the
                       implicated site is quarantined server-wide
                       (default 2)

call flags (one of):
  --call=f --args=JSON [--fuel=N] [--timeout-ms=N]   evaluate f(args)
  --eval               evaluate the program body
  --ping | --stats | --healthz | --shutdown[=drain|now]
  --reload             hot-reload the served file (server re-reads it)

call retry flags (any of these turns on self-healing retries —
deadline-aware, decorrelated-jitter backoff, retrying only transient
kinds like overloaded/worker_panicked):
  --retries=N          attempts beyond the first (default 3)
  --retry-budget=N     total retries this connection may spend
  --backoff-ms=N       base backoff sleep (default 5)
  --backoff-cap-ms=N   backoff ceiling (default 200)
  --call-deadline-ms=N overall per-call deadline across attempts

call exit codes: 0 ok, 1 transport/usage, then per error kind:
  2 bad_request, 3 overloaded, 4 shutting_down, 5 worker_panicked,
  6 fuel_exhausted, 7 stack_overflow, 8 cancelled, 9 runtime_error,
  10 compile_error

call fault flags (forwarded in the request, for crash-drill testing):
  --fault-panic-at-alloc=N  inject a worker panic at allocation #N

run also accepts --profile (hottest allocation/reuse sites) and --stats";

fn read_file(rest: &[String]) -> Result<(String, String), String> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| format!("missing <file> argument\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path.clone(), src))
}

fn has_flag(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

/// The value of a `--flag=value` argument, if present. Only the `=` form
/// is accepted so that the positional `<file>` argument stays unambiguous.
fn flag_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .find_map(|a| a.strip_prefix(flag)?.strip_prefix('='))
}

fn parse_num_flag<T: FromStr>(rest: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(rest, flag) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{flag}: `{v}` is not a valid number")),
    }
}

/// Parses a comma-separated list of cons site ids for a sabotage flag.
fn parse_site_list(list: &str, flag: &str) -> Result<Vec<SiteId>, String> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<u32>()
                .map(SiteId)
                .map_err(|_| format!("{flag}: `{s}` is not a cons site id"))
        })
        .collect()
}

/// Parses `--engine=tree|vm`; absent means the default engine (the VM).
fn engine_from_flags(rest: &[String]) -> Result<Engine, String> {
    match flag_value(rest, "--engine") {
        None => Ok(Engine::default()),
        Some(v) => v
            .parse::<Engine>()
            .map_err(|_| format!("--engine: `{v}` is not an engine (expected tree or vm)")),
    }
}

/// Parses a `--flag=N/D` fault rate (`N` alone means `N/1`).
fn parse_rate_flag(rest: &[String], flag: &str) -> Result<Option<FaultRate>, String> {
    let Some(v) = flag_value(rest, flag) else {
        return Ok(None);
    };
    let bad = || format!("{flag}: `{v}` is not a rate (expected N/D with D > 0)");
    let (num, den) = match v.split_once('/') {
        Some((n, d)) => (
            n.parse::<u32>().map_err(|_| bad())?,
            d.parse::<u32>().map_err(|_| bad())?,
        ),
        None => (v.parse::<u32>().map_err(|_| bad())?, 1),
    };
    if den == 0 {
        return Err(bad());
    }
    Ok(Some(FaultRate::new(num, den)))
}

/// Parses the scheduling flags: `--jobs=N` (0 = one worker per available
/// core) and `--summary-cache=PATH`.
fn schedule_from_flags(rest: &[String]) -> Result<ScheduleOptions, String> {
    let mut opts = ScheduleOptions::default();
    if let Some(n) = parse_num_flag::<usize>(rest, "--jobs")? {
        opts.jobs = if n == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            n
        };
    }
    if let Some(p) = flag_value(rest, "--summary-cache") {
        opts.summary_cache = Some(std::path::PathBuf::from(p));
    }
    Ok(opts)
}

/// Prints the schedule/cache diagnostics: a warning for any cache I/O
/// trouble, and — when scheduling flags were given — a one-line summary
/// of the SCC schedule and cache effectiveness.
fn report_schedule(analysis: &Analysis, rest: &[String]) {
    let s = &analysis.schedule;
    for err in &s.cache_errors {
        eprintln!("warning: summary cache: {err}");
    }
    if flag_value(rest, "--jobs").is_some() || flag_value(rest, "--summary-cache").is_some() {
        let mut line = format!(
            "schedule: {} SCCs in {} waves, {} solved, jobs={}",
            s.scc_count, s.wave_count, s.sccs_solved, s.jobs
        );
        if flag_value(rest, "--summary-cache").is_some() {
            line.push_str(&format!(
                ", cache {} hits / {} misses",
                s.cache_hits, s.cache_misses
            ));
        }
        eprintln!("{line}");
    }
}

fn budget_from_flags(rest: &[String]) -> Result<Budget, String> {
    let mut b = Budget::unlimited();
    if let Some(n) = parse_num_flag::<u32>(rest, "--max-passes")? {
        b.max_passes = n;
    }
    if let Some(n) = parse_num_flag::<u64>(rest, "--max-nodes")? {
        b.max_nodes = n;
    }
    if let Some(ms) = parse_num_flag::<u64>(rest, "--deadline-ms")? {
        b.deadline = Some(Duration::from_millis(ms));
    }
    Ok(b)
}

fn fault_from_flags(rest: &[String]) -> Result<FaultPlan, String> {
    let seed = parse_num_flag::<u64>(rest, "--fault-seed")?.unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    if let Some(cells) = parse_num_flag::<u64>(rest, "--heap-capacity")? {
        plan = plan.with_heap_capacity(cells);
    }
    if let Some(r) = parse_rate_flag(rest, "--fault-alloc-retreat")? {
        plan = plan.with_alloc_retreats(r);
    }
    if let Some(r) = parse_rate_flag(rest, "--fault-region-deny")? {
        plan = plan.with_region_denials(r);
    }
    if let Some(r) = parse_rate_flag(rest, "--fault-forced-gc")? {
        plan = plan.with_forced_gc(r);
    }
    if let Some(list) = flag_value(rest, "--fault-gc-at") {
        let indices: Vec<u64> = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| format!("--fault-gc-at: `{s}` is not an allocation index"))
            })
            .collect::<Result<_, _>>()?;
        plan = plan.with_forced_gc_at(indices);
    }
    Ok(plan)
}

/// Applies the resource-limit flags (`--fuel`, `--timeout-ms`,
/// `--max-depth`) to an interpreter configuration. An explicit fuel
/// budget wins over a deadline.
fn resource_flags_into(rest: &[String], config: &mut InterpConfig) -> Result<(), String> {
    if let Some(f) = parse_num_flag::<u64>(rest, "--fuel")? {
        config.fuel = Some(f);
    } else if let Some(ms) = parse_num_flag::<u64>(rest, "--timeout-ms")? {
        config.fuel = Some(ms.saturating_mul(DEFAULT_STEPS_PER_MS));
    }
    if let Some(d) = parse_num_flag::<usize>(rest, "--max-depth")? {
        config.max_depth = d;
    }
    heap_flags_into(rest, config)
}

/// Applies the generational-heap flags (`--gen-gc=on|off`,
/// `--nursery-kb=N`) to an interpreter configuration.
fn heap_flags_into(rest: &[String], config: &mut InterpConfig) -> Result<(), String> {
    if let Some(v) = flag_value(rest, "--gen-gc") {
        config.heap.gen_gc = match v {
            "on" => true,
            "off" => false,
            other => return Err(format!("--gen-gc: `{other}` is not a mode (on or off)")),
        };
    }
    if let Some(kb) = parse_num_flag::<usize>(rest, "--nursery-kb")? {
        config.heap.nursery_kb = kb;
    }
    Ok(())
}

/// Prints a `warning:` line per degradation event, or — under `--strict` —
/// turns them into a single hard error.
fn report_degradations(analysis: &Analysis, strict: bool) -> Result<(), String> {
    if analysis.fully_precise() {
        return Ok(());
    }
    if strict {
        let mut msg = String::from("error: analysis degraded to worst-case summaries (--strict):");
        for d in &analysis.degradations {
            msg.push_str(&format!("\n  {d}"));
        }
        return Err(msg);
    }
    for d in &analysis.degradations {
        eprintln!("warning: {d}");
    }
    Ok(())
}

/// Renders a pipeline failure: syntax and type errors get the full span
/// rendering; everything else gets its one-line `Display`.
fn render_pipeline_err(e: PipelineError, src: &str) -> String {
    let map = SourceMap::new(src.to_owned());
    match e {
        PipelineError::Analyze(AnalyzeError::Syntax(e)) => e.render(&map),
        PipelineError::Analyze(AnalyzeError::Type(e)) => e.render(&map),
        other => other.to_string(),
    }
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let map = SourceMap::new(src.clone());
    let program = parse_program(&src).map_err(|e| e.render(&map))?;
    let info = infer_program(&program).map_err(|e| e.render(&map))?;
    for (name, scheme) in &info.top_schemes {
        println!("{name} : {scheme}");
    }
    println!("max spine depth d = {}", info.max_spines);
    Ok(())
}

fn cmd_fmt(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let map = SourceMap::new(src.clone());
    let program = parse_program(&src).map_err(|e| e.render(&map))?;
    print!("{}", nml_escape_analysis::syntax::pretty_program(&program));
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let (path, src) = read_file(rest)?;
    if has_flag(rest, "--watch") {
        return cmd_analyze_watch(rest, &path, &src);
    }
    let mode = if has_flag(rest, "--mono") {
        PolyMode::Monomorphize
    } else {
        PolyMode::SimplestInstance
    };
    let budget = budget_from_flags(rest)?;
    let options = schedule_from_flags(rest)?;
    let analysis = nml_escape_analysis::escape::analyze_source_scheduled(
        &src,
        mode,
        EngineConfig::default(),
        budget,
        &options,
    )
    .map_err(|e| render_pipeline_err(PipelineError::Analyze(e), &src))?;
    report_schedule(&analysis, rest);
    report_degradations(&analysis, has_flag(rest, "--strict"))?;
    if has_flag(rest, "--report") {
        let report = nml_escape_analysis::report::OptimizationReport::for_analysis(&analysis);
        println!("{report}");
        return Ok(());
    }
    print_summaries(&analysis);
    println!(
        "fixpoint: {} passes, {} memoized applications",
        analysis.stats.passes, analysis.stats.memo_entries
    );
    Ok(())
}

fn print_summaries(analysis: &Analysis) {
    for summary in analysis.summaries.values() {
        print!("{summary}");
        for p in &summary.params {
            if p.ty.is_list() {
                println!(
                    "    -> top {} of {} spines never escape",
                    p.retained_spines(),
                    p.spines
                );
            }
        }
        let unshared = nml_escape_analysis::escape::unshared_from_summary(summary);
        if summary.result_ty.is_list() {
            println!("    -> top {unshared} spine(s) of any call's result are unshared");
        }
    }
}

/// `analyze --watch`: analyze once, then poll the file and re-analyze
/// incrementally on every change — only the SCCs whose transitive content
/// hash moved are re-solved, everything else is reused in place.
fn cmd_analyze_watch(rest: &[String], path: &str, src: &str) -> Result<(), String> {
    use nml_escape_analysis::escape::{Incremental, UpdateError};
    if has_flag(rest, "--mono") {
        return Err(
            "--watch re-analyzes incrementally in the default poly mode; drop --mono".to_owned(),
        );
    }
    let budget = budget_from_flags(rest)?;
    let map = SourceMap::new(src.to_owned());
    let program = parse_program(src).map_err(|e| e.render(&map))?;
    let info = infer_program(&program).map_err(|e| e.render(&map))?;
    let start = std::time::Instant::now();
    let mut inc = Incremental::new(program, info, EngineConfig::default(), budget);
    eprintln!(
        "watching {path}: initial analysis of {} SCCs in {:.1?}",
        inc.analysis().schedule.scc_count,
        start.elapsed()
    );
    print_summaries(inc.analysis());
    // Content-hash change detection (FileWatch): an editor that writes
    // twice within one mtime tick must still trigger a re-analysis, so
    // the modification time is only ever a hint, never the decision.
    let mut watch = FileWatch::seeded(path, src);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let Some(new_src) = watch.poll() else {
            continue;
        };
        let t = std::time::Instant::now();
        match inc.update_source(&new_src) {
            Ok(analysis) => {
                let s = &analysis.schedule;
                eprintln!(
                    "re-analyzed in {:.1?}: {} solved, {} reused of {} SCCs",
                    t.elapsed(),
                    s.sccs_solved,
                    s.sccs_reused,
                    s.scc_count
                );
                for d in &analysis.degradations {
                    eprintln!("warning: {d}");
                }
            }
            Err(e) => {
                // The analysis rolled back to the last good source; keep
                // watching so the user can fix the file in place.
                let map = SourceMap::new(new_src.clone());
                match e {
                    UpdateError::Syntax(e) => eprintln!("{}", e.render(&map)),
                    UpdateError::Type(e) => eprintln!("{}", e.render(&map)),
                    other => eprintln!("error: {other}"),
                }
            }
        }
    }
}

fn cmd_gen_corpus(rest: &[String]) -> Result<(), String> {
    let seed = parse_num_flag::<u64>(rest, "--seed")?.unwrap_or(0);
    let spec = flag_value(rest, "--shape").unwrap_or("mega");
    let shape = nml_corpusgen::parse_shape(spec).map_err(|e| format!("--shape: {e}"))?;
    let corpus = nml_corpusgen::generate(seed, &shape);
    let src = corpus.source();
    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(path, &src).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} functions, {} bytes (seed {seed}, shape {spec})",
                corpus.bindings.len(),
                src.len()
            );
        }
        None => print!("{src}"),
    }
    Ok(())
}

/// Picks the compilation pipeline from the optimization flags, threading
/// the analysis budget through, and applies the degradation policy.
fn compile_for(rest: &[String], src: &str) -> Result<Compiled, String> {
    let budget = budget_from_flags(rest)?;
    let options = schedule_from_flags(rest)?;
    let mode = PolyMode::SimplestInstance;
    let compiled = if has_flag(rest, "-O") || has_flag(rest, "--optimize") {
        compile_optimized_scheduled(src, mode, budget, &options)
    } else if has_flag(rest, "--local-stack-alloc") {
        // The local planner re-analyzes per call site with its own engine;
        // it does not take a budget. Refuse the combination instead of
        // silently ignoring the flags.
        if budget != Budget::unlimited() {
            return Err(
                "budget flags are not supported with --local-stack-alloc; use --stack-alloc"
                    .to_owned(),
            );
        }
        compile_with_local_stack_alloc(src)
    } else if has_flag(rest, "--stack-alloc") {
        compile_scheduled(src, mode, budget, &options).map(|mut c| {
            nml_escape_analysis::opt::annotate_stack(&mut c.ir, &c.analysis);
            c
        })
    } else if has_flag(rest, "--auto-reuse") {
        compile_scheduled(src, mode, budget, &options).map(|mut c| {
            nml_escape_analysis::opt::auto_reuse(&mut c.ir, &c.analysis);
            c
        })
    } else {
        compile_scheduled(src, mode, budget, &options)
    };
    let mut compiled = compiled.map_err(|e| render_pipeline_err(e, src))?;
    apply_sroa_policy(rest, &mut compiled)?;
    report_schedule(&compiled.analysis, rest);
    report_degradations(&compiled.analysis, has_flag(rest, "--strict"))?;
    Ok(compiled)
}

/// SROA defaults on under the VM (the only engine that scalarizes) and
/// off under the tree-walking oracle; `--sroa` / `--no-sroa` override.
/// The mark is only a license — the bytecode compiler independently
/// re-verifies each site — so forcing it on is always safe.
fn apply_sroa_policy(rest: &[String], compiled: &mut Compiled) -> Result<(), String> {
    let on = if has_flag(rest, "--no-sroa") {
        false
    } else if has_flag(rest, "--sroa") {
        true
    } else {
        engine_from_flags(rest)? == Engine::Vm
    };
    if on {
        nml_escape_analysis::opt::annotate_sroa(&mut compiled.ir, &compiled.analysis);
    } else {
        // Undo any marks the `-O` pass manager already placed.
        nml_escape_analysis::opt::strip_sroa(&mut compiled.ir);
    }
    Ok(())
}

fn cmd_ir(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let compiled = compile_for(rest, &src)?;
    print!("{}", compiled.ir);
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    if has_flag(rest, "--checked") {
        return cmd_run_checked(rest, &src);
    }
    let compiled = compile_for(rest, &src)?;
    let engine = engine_from_flags(rest)?;
    let mut config = InterpConfig {
        fault: fault_from_flags(rest)?,
        ..InterpConfig::default()
    };
    resource_flags_into(rest, &mut config)?;
    if has_flag(rest, "--profile") {
        return run_profiled(&compiled, config, engine, has_flag(rest, "--stats"));
    }
    let outcome = run_with_engine(&compiled.ir, config, engine).map_err(|e| e.to_string())?;
    println!("{}", outcome.result);
    if has_flag(rest, "--stats") {
        println!("--- runtime statistics ---");
        println!("{}", outcome.stats);
    }
    Ok(())
}

/// `run --checked`: execute under the soundness sentinel with the
/// quarantine-and-retry loop, then print the final value and — when
/// anything was caught — the quarantine report (stderr), naming every
/// condemned site, the claim it made, and the access that disproved it.
fn cmd_run_checked(rest: &[String], src: &str) -> Result<(), String> {
    if has_flag(rest, "--local-stack-alloc") {
        return Err(
            "--checked is not supported with --local-stack-alloc; use --stack-alloc".to_owned(),
        );
    }
    let budget = budget_from_flags(rest)?;
    let sched = schedule_from_flags(rest)?;
    let mut copts = CheckedOptions {
        engine: engine_from_flags(rest)?,
        ..CheckedOptions::default()
    };
    if let Some(n) = parse_num_flag::<u32>(rest, "--max-retries")? {
        copts.max_retries = n;
    }
    if let Some(p) = flag_value(rest, "--quarantine-file") {
        copts.quarantine_path = Some(PathBuf::from(p));
    }
    // Narrow the pass set when a single-pass flag was given; plain
    // `--checked` (with or without -O) checks the full pass manager.
    if has_flag(rest, "--stack-alloc") {
        copts.opt = OptOptions {
            reuse: false,
            block: false,
            stack: true,
            pretenure: false,
            sroa: false,
        };
    } else if has_flag(rest, "--auto-reuse") {
        copts.opt = OptOptions {
            reuse: true,
            block: false,
            stack: false,
            pretenure: false,
            sroa: false,
        };
    }
    if has_flag(rest, "--sroa") {
        copts.opt.sroa = true;
    }
    if has_flag(rest, "--no-sroa") {
        copts.opt.sroa = false;
    }
    if let Some(list) = flag_value(rest, "--fault-unsound-stack") {
        copts.sabotage = SabotagePlan::stack(parse_site_list(list, "--fault-unsound-stack")?);
    }
    if let Some(list) = flag_value(rest, "--fault-unsound-elide") {
        copts.sabotage.elide_sites = parse_site_list(list, "--fault-unsound-elide")?
            .into_iter()
            .collect();
    }
    let mut config = InterpConfig {
        fault: fault_from_flags(rest)?,
        ..InterpConfig::default()
    };
    resource_flags_into(rest, &mut config)?;
    let (out, compiled) = run_checked(
        src,
        PolyMode::SimplestInstance,
        budget,
        &sched,
        &copts,
        &config,
    )
    .map_err(|e| render_pipeline_err(e, src))?;
    report_schedule(&compiled.analysis, rest);
    report_degradations(&compiled.analysis, has_flag(rest, "--strict"))?;
    println!("{}", out.result);
    if !out.quarantined.is_empty() || out.degraded_unoptimized {
        eprintln!(
            "--- checked-mode report: {} violation(s), {} attempt(s) ---",
            out.stats.violations, out.attempts
        );
        for rec in &out.quarantined {
            let owner = compiled
                .ir
                .site_owner(rec.site)
                .map(|o| format!("in {o}"))
                .unwrap_or_else(|| "in <main>".to_owned());
            eprintln!(
                "  quarantined site {:>4} {owner:<20} (attempt {}): {}",
                rec.site.0, rec.attempt, rec.violation
            );
        }
        if out.degraded_unoptimized {
            eprintln!("  degraded to the fully unoptimized interpreter");
        }
    }
    if has_flag(rest, "--stats") {
        println!("--- runtime statistics ---");
        println!("{}", out.stats);
    }
    Ok(())
}

/// `nmlc serve`: compile once, serve many. Blocks until a client sends
/// a shutdown request, then prints the final counters.
fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let (path, src) = read_file(rest)?;
    let socket = flag_value(rest, "--socket")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{path}.sock")));
    let mut cfg = ServeConfig {
        budget: budget_from_flags(rest)?,
        ..ServeConfig::default()
    };
    let sched = schedule_from_flags(rest)?;
    cfg.jobs = sched.jobs;
    cfg.summary_cache = sched.summary_cache;
    if let Some(n) = parse_num_flag::<usize>(rest, "--workers")? {
        cfg.workers = n.max(1);
    }
    if let Some(n) = parse_num_flag::<usize>(rest, "--queue-cap")? {
        cfg.queue_cap = n.max(1);
    }
    cfg.default_fuel = parse_num_flag::<u64>(rest, "--fuel")?;
    cfg.default_timeout_ms = parse_num_flag::<u64>(rest, "--timeout-ms")?;
    cfg.max_depth = parse_num_flag::<usize>(rest, "--max-depth")?;
    if let Some(n) = parse_num_flag::<u64>(rest, "--steps-per-ms")? {
        cfg.steps_per_ms = n.max(1);
    }
    if let Some(v) = flag_value(rest, "--gen-gc") {
        cfg.gen_gc = match v {
            "on" => true,
            "off" => false,
            other => return Err(format!("--gen-gc: `{other}` is not a mode (on or off)")),
        };
    }
    if let Some(kb) = parse_num_flag::<usize>(rest, "--nursery-kb")? {
        cfg.nursery_kb = kb;
    }
    if has_flag(rest, "--no-optimize") {
        cfg.optimize = false;
    }
    cfg.checked = has_flag(rest, "--checked");
    if let Some(n) = parse_num_flag::<u32>(rest, "--max-retries")? {
        cfg.max_retries = n;
    }
    cfg.source_path = Some(PathBuf::from(&path));
    cfg.watch = has_flag(rest, "--watch");
    // The flight recorder is on by default (bounded ring next to the
    // socket); `--crash-dir=off` disables it.
    cfg.crash_dir = match flag_value(rest, "--crash-dir") {
        Some("off") => None,
        Some(dir) => Some(PathBuf::from(dir)),
        None => Some(PathBuf::from(format!("{}.crashes", socket.display()))),
    };
    if let Some(n) = parse_num_flag::<usize>(rest, "--crash-ring-cap")? {
        cfg.crash_ring_cap = n.max(1);
    }
    if let Some(n) = parse_num_flag::<u32>(rest, "--crash-escalate-after")? {
        cfg.crash_escalate_after = n.max(1);
    }
    eprintln!(
        "serving {path} on {} ({} workers, queue {}{}{}{})",
        socket.display(),
        cfg.workers,
        cfg.queue_cap,
        if cfg.optimize { ", optimized" } else { "" },
        if cfg.checked { ", checked" } else { "" },
        if cfg.watch { ", watching" } else { "" },
    );
    let report =
        nml_escape_analysis::serve::serve(&src, &socket, &cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "server drained: ok={} guest_errors={} panics={} degraded={} shed={} bad_frames={} \
         quarantined={} reloads_ok={} reloads_failed={} epochs_retired={} epoch_leaks={} \
         crash_bundles={}",
        report.served_ok,
        report.guest_errors,
        report.panics,
        report.degraded,
        report.shed,
        report.bad_frames,
        report.quarantined_sites,
        report.reloads_ok,
        report.reloads_failed,
        report.epochs_retired,
        report.epoch_leaks,
        report.crash_bundles,
    );
    Ok(())
}

/// Builds a [`RetryPolicy`] from the `call` retry flags; `None` when no
/// flag was given (plain single-attempt request).
fn retry_policy_from_flags(rest: &[String]) -> Result<Option<RetryPolicy>, String> {
    let mut policy = RetryPolicy::default();
    let mut any = false;
    if let Some(n) = parse_num_flag::<u32>(rest, "--retries")? {
        policy.max_retries = n;
        any = true;
    }
    if let Some(n) = parse_num_flag::<u32>(rest, "--retry-budget")? {
        policy.retry_budget = n;
        any = true;
    }
    if let Some(ms) = parse_num_flag::<u64>(rest, "--backoff-ms")? {
        policy.base_backoff = Duration::from_millis(ms);
        any = true;
    }
    if let Some(ms) = parse_num_flag::<u64>(rest, "--backoff-cap-ms")? {
        policy.max_backoff = Duration::from_millis(ms);
        any = true;
    }
    if let Some(ms) = parse_num_flag::<u64>(rest, "--call-deadline-ms")? {
        policy.deadline = Some(Duration::from_millis(ms));
        any = true;
    }
    Ok(any.then_some(policy))
}

/// `nmlc call`: one request against a running server. Successful
/// responses go to stdout; error responses go to stderr with a distinct
/// exit code per error kind (see `ErrorKind::exit_code`), so scripts
/// can tell `fuel_exhausted` from `overloaded` without parsing JSON.
/// Retry flags (`--retries` etc.) turn on deadline-aware retries with
/// decorrelated-jitter backoff for retryable kinds only.
fn cmd_call(rest: &[String]) -> Result<(), Failure> {
    let socket = flag_value(rest, "--socket")
        .ok_or_else(|| Failure::from(format!("call requires --socket=PATH\n{USAGE}")))?;
    let line = if has_flag(rest, "--ping") {
        "{\"op\":\"ping\",\"id\":0}".to_owned()
    } else if has_flag(rest, "--stats") {
        "{\"op\":\"stats\",\"id\":0}".to_owned()
    } else if has_flag(rest, "--healthz") {
        "{\"op\":\"healthz\",\"id\":0}".to_owned()
    } else if has_flag(rest, "--reload") {
        "{\"op\":\"reload\",\"id\":0}".to_owned()
    } else if has_flag(rest, "--shutdown") || flag_value(rest, "--shutdown").is_some() {
        let mode = flag_value(rest, "--shutdown").unwrap_or("drain");
        if mode != "drain" && mode != "now" {
            return Err(Failure::from(format!(
                "--shutdown: `{mode}` is not a mode (drain or now)"
            )));
        }
        format!("{{\"op\":\"shutdown\",\"id\":0,\"mode\":\"{mode}\"}}")
    } else if has_flag(rest, "--eval") || flag_value(rest, "--call").is_some() {
        let mut obj = vec![
            ("op".to_owned(), Json::Str("eval".to_owned())),
            ("id".to_owned(), Json::Int(0)),
        ];
        if let Some(f) = flag_value(rest, "--call") {
            obj.push(("call".to_owned(), Json::Str(f.to_owned())));
        }
        if let Some(a) = flag_value(rest, "--args") {
            let v =
                nml_escape_analysis::serve::json::parse(a).map_err(|e| format!("--args: {e}"))?;
            if !matches!(v, Json::Arr(_)) {
                return Err(Failure::from(
                    "--args must be a JSON array (one element per parameter)".to_owned(),
                ));
            }
            obj.push(("args".to_owned(), v));
        }
        if let Some(f) = parse_num_flag::<i64>(rest, "--fuel")? {
            obj.push(("fuel".to_owned(), Json::Int(f)));
        }
        if let Some(t) = parse_num_flag::<i64>(rest, "--timeout-ms")? {
            obj.push(("timeout_ms".to_owned(), Json::Int(t)));
        }
        if let Some(n) = parse_num_flag::<i64>(rest, "--fault-panic-at-alloc")? {
            obj.push((
                "fault".to_owned(),
                Json::Obj(vec![("panic_at_alloc".to_owned(), Json::Int(n))]),
            ));
        }
        Json::Obj(obj).to_string()
    } else {
        return Err(Failure::from(format!(
            "call needs one of --call/--eval/--ping/--stats/--healthz/--reload/--shutdown\n{USAGE}"
        )));
    };
    let policy = retry_policy_from_flags(rest)?;
    let mut client = Client::connect(std::path::Path::new(socket))
        .map_err(|e| Failure::from(format!("connect {socket}: {e}")))?;
    let resp = match policy {
        Some(p) => {
            client.set_retry_policy(p);
            client.call_retry(&line)
        }
        None => client.request(&line),
    }
    .map_err(|e| Failure::from(format!("request failed: {e}")))?;
    if resp.get("status").and_then(Json::as_str) == Some("error") {
        let kind = resp.get("kind").and_then(Json::as_str).unwrap_or("error");
        let msg = resp.get("message").and_then(Json::as_str).unwrap_or("");
        let code = ErrorKind::from_wire(kind).map_or(1, ErrorKind::exit_code);
        return Err(Failure::code(
            code,
            format!("{resp}\nserver answered {kind}: {msg}"),
        ));
    }
    println!("{resp}");
    Ok(())
}

/// `nmlc replay`: deterministically re-execute a crash bundle captured
/// by the serve flight recorder, in-process (no server required).
/// Exits 0 iff the recorded outcome reproduces; `--minimize` then
/// shrinks the request while preserving the crash.
fn cmd_replay(rest: &[String]) -> Result<(), Failure> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| Failure::from(format!("replay requires a bundle path\n{USAGE}")))?;
    let bundle = CrashBundle::load(std::path::Path::new(path))
        .map_err(|e| Failure::from(format!("{path}: {e}")))?;
    let report = replay(&bundle).map_err(|e| Failure::from(format!("{path}: {e}")))?;
    print!("{}", render_report(&bundle, &report));
    if has_flag(rest, "--minimize") {
        let m = minimize(&bundle).map_err(|e| Failure::from(format!("{path}: {e}")))?;
        println!("minimized ({} attempts): {}", m.attempts, m.request);
    }
    if report.reproduced {
        Ok(())
    } else {
        Err(Failure::code(1, String::new()))
    }
}

/// Runs with per-allocation-site attribution and prints the hottest
/// sites. Both engines attribute on the same `Heap`, so the report is
/// engine-independent.
fn run_profiled(
    compiled: &Compiled,
    config: InterpConfig,
    engine: Engine,
    stats: bool,
) -> Result<(), String> {
    use nml_escape_analysis::runtime::{Interp, Vm};
    match engine {
        Engine::Tree => {
            let mut interp =
                Interp::with_config(&compiled.ir, config).map_err(|e| e.to_string())?;
            let v = interp.run().map_err(|e| e.to_string())?;
            let rendered = nml_escape_analysis::pipeline::render_value(&interp, &v)
                .map_err(|e| e.to_string())?;
            println!("{rendered}");
            report_hot_sites(&interp.heap, compiled, stats);
        }
        Engine::Vm => {
            let mut vm = Vm::with_config(&compiled.ir, config).map_err(|e| e.to_string())?;
            let v = vm.run().map_err(|e| e.to_string())?;
            let rendered = nml_escape_analysis::pipeline::render_value_on(&vm.heap, &v)
                .map_err(|e| e.to_string())?;
            println!("{rendered}");
            report_hot_sites(&vm.heap, compiled, stats);
        }
    }
    Ok(())
}

fn report_hot_sites(
    heap: &nml_escape_analysis::runtime::Heap<'_>,
    compiled: &Compiled,
    stats: bool,
) {
    println!("--- hottest allocation sites ---");
    for (site, n) in heap.hot_sites().into_iter().take(8) {
        let owner = compiled
            .ir
            .site_owner(site)
            .map(|o| format!("in {o}"))
            .unwrap_or_else(|| "in <main>".to_owned());
        println!("  site {:>4} {owner:<20} {n:>8} cells", site.0);
    }
    let reuses = heap.hot_reuse_sites();
    if !reuses.is_empty() {
        println!("--- hottest DCONS reuse sites ---");
        for (site, n) in reuses.into_iter().take(8) {
            let owner = compiled
                .ir
                .site_owner(site)
                .map(|o| format!("in {o}"))
                .unwrap_or_else(|| "in <main>".to_owned());
            println!("  site {:>4} {owner:<20} {n:>8} reuses", site.0);
        }
    }
    if stats {
        println!("--- runtime statistics ---");
        println!("{}", heap.stats);
    }
}
