//! `nmlc` — the nml driver: type checking, escape analysis, optimization
//! and instrumented execution from the command line.
//!
//! ```text
//! nmlc check <file>                  parse + infer, print signatures
//! nmlc analyze <file> [--mono]       escape analysis report
//! nmlc ir <file> [--stack-alloc]     print the lowered IR
//! nmlc run <file> [--stack-alloc] [--stats]
//! ```

use nml_escape_analysis::escape::{analyze_source_with, EngineConfig, PolyMode};
use nml_escape_analysis::pipeline::{
    compile, compile_optimized, compile_with_auto_reuse, compile_with_local_stack_alloc,
    compile_with_stack_alloc, run,
};
use nml_escape_analysis::syntax::{parse_program, SourceMap};
use nml_escape_analysis::types::infer_program;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "check" => cmd_check(rest),
        "fmt" => cmd_fmt(rest),
        "analyze" => cmd_analyze(rest),
        "ir" => cmd_ir(rest),
        "run" => cmd_run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: nmlc <command> <file> [flags]

commands:
  check   <file>                 parse and type-check; print signatures
  fmt     <file>                 parse and pretty-print (canonical layout)
  analyze <file> [--mono] [--report]
                                 run the escape analysis; print G(f,i),
                                 retained spines, and sharing info
  ir      <file> [opt flags]     print the storage-annotated IR
  run     <file> [opt flags] [--stats]
                                 execute with the instrumented runtime

optimization flags (ir/run):
  -O, --optimize       the full pass manager: reuse -> block -> stack
  --stack-alloc        stack regions from the global escape test
  --local-stack-alloc  stack regions from the local test (monomorphizes first)
  --auto-reuse         DCONS variants + Theorem-2-guided call rewriting

run also accepts --profile (hottest allocation/reuse sites) and --stats";

fn read_file(rest: &[String]) -> Result<(String, String), String> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or_else(|| format!("missing <file> argument\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path.clone(), src))
}

fn has_flag(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

fn cmd_check(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let map = SourceMap::new(src.clone());
    let program = parse_program(&src).map_err(|e| e.render(&map))?;
    let info = infer_program(&program).map_err(|e| e.render(&map))?;
    for (name, scheme) in &info.top_schemes {
        println!("{name} : {scheme}");
    }
    println!("max spine depth d = {}", info.max_spines);
    Ok(())
}

fn cmd_fmt(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let map = SourceMap::new(src.clone());
    let program = parse_program(&src).map_err(|e| e.render(&map))?;
    print!("{}", nml_escape_analysis::syntax::pretty_program(&program));
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let mode = if has_flag(rest, "--mono") {
        PolyMode::Monomorphize
    } else {
        PolyMode::SimplestInstance
    };
    let analysis = analyze_source_with(&src, mode, EngineConfig::default())
        .map_err(|e| e.to_string())?;
    if has_flag(rest, "--report") {
        let report =
            nml_escape_analysis::report::OptimizationReport::for_analysis(&analysis);
        println!("{report}");
        return Ok(());
    }
    for summary in analysis.summaries.values() {
        print!("{summary}");
        for p in &summary.params {
            if p.ty.is_list() {
                println!(
                    "    -> top {} of {} spines never escape",
                    p.retained_spines(),
                    p.spines
                );
            }
        }
        let unshared = nml_escape_analysis::escape::unshared_from_summary(summary);
        if summary.result_ty.is_list() {
            println!(
                "    -> top {unshared} spine(s) of any call's result are unshared"
            );
        }
    }
    println!(
        "fixpoint: {} passes, {} memoized applications",
        analysis.stats.passes, analysis.stats.memo_entries
    );
    Ok(())
}

/// Picks the compilation pipeline from the optimization flags.
fn compile_for(
    rest: &[String],
    src: &str,
) -> Result<nml_escape_analysis::pipeline::Compiled, nml_escape_analysis::pipeline::PipelineError> {
    if has_flag(rest, "-O") || has_flag(rest, "--optimize") {
        compile_optimized(src)
    } else if has_flag(rest, "--local-stack-alloc") {
        compile_with_local_stack_alloc(src)
    } else if has_flag(rest, "--stack-alloc") {
        compile_with_stack_alloc(src)
    } else if has_flag(rest, "--auto-reuse") {
        compile_with_auto_reuse(src)
    } else {
        compile(src)
    }
}

fn cmd_ir(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let compiled = compile_for(rest, &src).map_err(|e| e.to_string())?;
    print!("{}", compiled.ir);
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let (_, src) = read_file(rest)?;
    let compiled = compile_for(rest, &src).map_err(|e| e.to_string())?;
    if has_flag(rest, "--profile") {
        return run_profiled(&compiled, has_flag(rest, "--stats"));
    }
    let outcome = run(&compiled.ir).map_err(|e| e.to_string())?;
    println!("{}", outcome.result);
    if has_flag(rest, "--stats") {
        println!("--- runtime statistics ---");
        println!("{}", outcome.stats);
    }
    Ok(())
}

/// Runs with per-allocation-site attribution and prints the hottest
/// sites.
fn run_profiled(
    compiled: &nml_escape_analysis::pipeline::Compiled,
    stats: bool,
) -> Result<(), String> {
    use nml_escape_analysis::runtime::Interp;
    let mut interp = Interp::new(&compiled.ir).map_err(|e| e.to_string())?;
    let v = interp.run().map_err(|e| e.to_string())?;
    let rendered = nml_escape_analysis::pipeline::render_value(&interp, &v)
        .map_err(|e| e.to_string())?;
    println!("{rendered}");
    println!("--- hottest allocation sites ---");
    for (site, n) in interp.heap.hot_sites().into_iter().take(8) {
        let owner = compiled
            .ir
            .site_owner(site)
            .map(|o| format!("in {o}"))
            .unwrap_or_else(|| "in <main>".to_owned());
        println!("  site {:>4} {owner:<20} {n:>8} cells", site.0);
    }
    let reuses = interp.heap.hot_reuse_sites();
    if !reuses.is_empty() {
        println!("--- hottest DCONS reuse sites ---");
        for (site, n) in reuses.into_iter().take(8) {
            let owner = compiled
                .ir
                .site_owner(site)
                .map(|o| format!("in {o}"))
                .unwrap_or_else(|| "in <main>".to_owned());
            println!("  site {:>4} {owner:<20} {n:>8} reuses", site.0);
        }
    }
    if stats {
        println!("--- runtime statistics ---");
        println!("{}", interp.heap.stats);
    }
    Ok(())
}
