//! Whole-program optimization reports: everything the escape analysis
//! licenses, in one compiler-style summary.
//!
//! For each top-level function the report collects the global verdicts
//! (§4.1), the sharing conclusion for its results (Theorem 2), whether a
//! `DCONS` reuse variant exists (§6), and the stack/block opportunities
//! at its call sites — the practical payoff the paper's introduction
//! promises.

use crate::pipeline::PipelineError;
use nml_escape::{analyze_source, unshared_from_summary, Analysis};
use nml_opt::{
    default_reuse_param, eligible_sites, lower_program, plan_stack_allocation, select_sites,
};
use nml_syntax::Symbol;
use std::fmt;

/// Per-function findings.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// The function.
    pub name: Symbol,
    /// Rendered signature.
    pub signature: String,
    /// Per-parameter: `(G verdict, spines, retained top spines)`.
    pub params: Vec<(String, u32, u32)>,
    /// Unshared top spines of any call's result (Theorem 2 case 2);
    /// `None` for non-list results.
    pub unshared_result_spines: Option<u32>,
    /// The parameter a `DCONS` variant would reuse, with the number of
    /// eligible-and-selected cons sites; `None` when reuse is not
    /// licensed.
    pub reuse: Option<(usize, usize)>,
    /// Why this function's summary is not exact, when it is not: the
    /// rendered [`nml_escape::DegradeReason`], including the originating
    /// function for transitive degradations.
    pub degraded: Option<String>,
}

/// The whole-program report.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// One entry per analyzed function, in name order.
    pub functions: Vec<FunctionReport>,
    /// Number of call sites the local-test stack plan would wrap (on the
    /// simplest-instance program; monomorphize for per-instance counts).
    pub stack_call_sites: usize,
    /// Number of cons sites the stack plan moves to regions.
    pub stack_cons_sites: usize,
    /// `d`, the spine-depth bound of the escape domain.
    pub max_spines: u32,
}

impl OptimizationReport {
    /// Analyzes `src` and assembles the report.
    ///
    /// # Errors
    ///
    /// Any front-end or analysis failure ([`PipelineError::Analyze`]).
    pub fn for_source(src: &str) -> Result<Self, PipelineError> {
        let analysis = analyze_source(src)?;
        Ok(Self::for_analysis(&analysis))
    }

    /// Assembles the report from an existing analysis.
    pub fn for_analysis(analysis: &Analysis) -> Self {
        let ir = lower_program(&analysis.program, &analysis.info);
        let mut functions = Vec::new();
        for (name, summary) in &analysis.summaries {
            let params = summary
                .params
                .iter()
                .map(|p| (p.verdict.to_string(), p.spines, p.retained_spines()))
                .collect();
            let unshared_result_spines = summary
                .result_ty
                .is_list()
                .then(|| unshared_from_summary(summary));
            let reuse = default_reuse_param(analysis, *name).and_then(|idx| {
                let func = ir.func(*name)?;
                let x = *func.params.get(idx)?;
                let sites = eligible_sites(&func.body, x);
                let chosen = select_sites(&func.body, &sites);
                (!chosen.is_empty()).then_some((idx, chosen.len()))
            });
            let degraded = analysis
                .degradations
                .iter()
                .find(|d| d.function == *name)
                .map(|d| d.reason.to_string());
            functions.push(FunctionReport {
                name: *name,
                signature: analysis
                    .info
                    .sig(*name)
                    .map(|t| t.to_string())
                    .unwrap_or_default(),
                params,
                unshared_result_spines,
                reuse,
                degraded,
            });
        }
        let plan = plan_stack_allocation(&analysis.program, &analysis.info).unwrap_or_default();
        OptimizationReport {
            functions,
            stack_call_sites: plan.stack_calls.len(),
            stack_cons_sites: plan.stack_cons.len(),
            max_spines: analysis.info.max_spines,
        }
    }

    /// Total number of functions with at least one exploitable property.
    pub fn exploitable_functions(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| {
                f.reuse.is_some()
                    || f.params.iter().any(|(_, s, r)| *s > 0 && *r > 0)
                    || f.unshared_result_spines.unwrap_or(0) > 0
            })
            .count()
    }
}

impl fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "escape-analysis optimization report (d = {})",
            self.max_spines
        )?;
        writeln!(f, "{}", "=".repeat(64))?;
        for func in &self.functions {
            writeln!(f, "{} : {}", func.name, func.signature)?;
            if let Some(reason) = &func.degraded {
                writeln!(f, "  degraded: {reason}")?;
            }
            for (i, (verdict, spines, retained)) in func.params.iter().enumerate() {
                write!(f, "  param {}: G = {verdict}", i + 1)?;
                if *spines > 0 {
                    write!(f, "  [top {retained}/{spines} spines never escape]")?;
                }
                writeln!(f)?;
            }
            if let Some(u) = func.unshared_result_spines {
                writeln!(f, "  sharing: top {u} spine(s) of every result unshared")?;
            }
            match func.reuse {
                Some((idx, sites)) => writeln!(
                    f,
                    "  reuse: DCONS variant available on param {} ({sites} site(s))",
                    idx + 1
                )?,
                None => writeln!(f, "  reuse: not licensed")?,
            }
        }
        writeln!(f, "{}", "-".repeat(64))?;
        writeln!(
            f,
            "stack plan: {} call site(s), {} cons site(s) move to regions",
            self.stack_call_sites, self.stack_cons_sites
        )?;
        write!(
            f,
            "{} of {} functions have exploitable escape properties",
            self.exploitable_functions(),
            self.functions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn report_for_partition_sort() {
        let r = OptimizationReport::for_source(corpus::PARTITION_SORT.source).unwrap();
        assert_eq!(r.functions.len(), 3);
        assert_eq!(r.max_spines, 2);
        let text = r.to_string();
        assert!(
            text.contains("append : int list -> int list -> int list"),
            "{text}"
        );
        assert!(text.contains("DCONS variant available"), "{text}");
        assert!(
            text.contains("top 1 spine(s) of every result unshared"),
            "{text}"
        );
        assert!(r.exploitable_functions() >= 2);
    }

    #[test]
    fn report_renders_for_whole_corpus() {
        for w in corpus::ALL {
            let r = OptimizationReport::for_source(w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let text = r.to_string();
            assert!(text.contains("optimization report"), "{}", w.name);
        }
    }

    #[test]
    fn transitive_degradation_names_its_origin() {
        use nml_escape::{
            analyze_source_scheduled, Budget, DegradeReason, EngineConfig, PolyMode,
            ScheduleOptions,
        };
        // `len` depends on a six-function cycle. The apportioned node
        // budget is enough for `len`'s whole solve but not for the
        // cycle's slot fixpoint, so the cycle degrades to worst-case
        // slots and `len` — analyzed against them — must report the
        // provenance.
        let src = "letrec
          p1 l = if (null l) then nil else cons (car l) (p2 (cdr l));
          p2 l = if (null l) then nil else cons (car l) (p3 (cdr l));
          p3 l = if (null l) then nil else cons (car l) (p4 (cdr l));
          p4 l = if (null l) then nil else cons (car l) (p5 (cdr l));
          p5 l = if (null l) then nil else cons (car l) (p6 (cdr l));
          p6 l = if (null l) then nil else cons (car l) (p1 (cdr l));
          len l = if (null (p1 l)) then 0 else 1
        in len [1, 2]";
        let budget = Budget {
            max_nodes: 40,
            ..Budget::unlimited()
        };
        let analysis = analyze_source_scheduled(
            src,
            PolyMode::SimplestInstance,
            EngineConfig::default(),
            budget,
            &ScheduleOptions::default(),
        )
        .unwrap();
        assert!(analysis.is_degraded("p1"));
        assert!(analysis.is_degraded("len"));
        let transitive = analysis
            .degradations
            .iter()
            .find(|d| d.function.as_str() == "len")
            .expect("len has a degradation record");
        assert!(
            matches!(&transitive.reason, DegradeReason::Transitive { .. }),
            "{transitive}"
        );
        let text = OptimizationReport::for_analysis(&analysis).to_string();
        assert!(text.contains("transitively degraded via `p1`"), "{text}");
    }

    #[test]
    fn consumer_has_no_reuse_but_full_retention() {
        let r = OptimizationReport::for_source(
            "letrec sum l = if (null l) then 0 else car l + sum (cdr l) in sum [1]",
        )
        .unwrap();
        let sum = &r.functions[0];
        assert_eq!(sum.params[0].2, 1, "whole spine retained");
        assert!(sum.reuse.is_none(), "no cons under the null guard");
        assert!(sum.unshared_result_spines.is_none(), "int result");
    }
}
