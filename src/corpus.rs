//! The workload corpus: nml programs used throughout the test suite, the
//! soundness harness, and the benchmark tables.
//!
//! Each workload names the functions whose escape behaviour is
//! interesting, and carries the expected global verdicts where the paper
//! (or hand analysis) pins them down.

/// One corpus program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name.
    pub name: &'static str,
    /// nml source.
    pub source: &'static str,
    /// Functions to analyze.
    pub functions: &'static [&'static str],
}

/// The paper's partition sort (Appendix A).
pub const PARTITION_SORT: Workload = Workload {
    name: "partition_sort",
    source: r#"
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h =
    if (null x) then (cons l (cons h nil))
    else if (car x) < p
         then split p (cdr x) (cons (car x) l) h
         else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))
in ps [5, 2, 7, 1, 3, 4]
"#,
    functions: &["append", "split", "ps"],
};

/// The paper's introduction example.
pub const MAP_PAIR: Workload = Workload {
    name: "map_pair",
    source: "letrec
  pair x = cons (car x) (cons (car (cdr x)) nil);
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l))
in map pair [[1,2],[3,4],[5,6]]",
    functions: &["pair", "map"],
};

/// Naive quadratic reverse (§A.3.2).
pub const REV_NAIVE: Workload = Workload {
    name: "rev_naive",
    source: "letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3]",
    functions: &["append", "rev"],
};

/// Accumulator reverse (linear).
pub const REV_ACC: Workload = Workload {
    name: "rev_acc",
    source: "letrec
  revonto l acc = if (null l) then acc
                  else revonto (cdr l) (cons (car l) acc);
  rev l = revonto l nil
in rev [1, 2, 3]",
    functions: &["revonto", "rev"],
};

/// Length, sum, last, nth: pure consumers.
pub const CONSUMERS: Workload = Workload {
    name: "consumers",
    source: "letrec
  len l = if (null l) then 0 else 1 + len (cdr l);
  sum l = if (null l) then 0 else car l + sum (cdr l);
  last l = if (null (cdr l)) then car l else last (cdr l);
  nth n l = if n = 0 then car l else nth (n - 1) (cdr l)
in len [1] + sum [2] + last [3] + nth 0 [4]",
    functions: &["len", "sum", "last", "nth"],
};

/// take / drop: drop returns a suffix (escapes), take rebuilds (does not).
pub const TAKE_DROP: Workload = Workload {
    name: "take_drop",
    source: "letrec
  take n l = if n = 0 then nil
             else if (null l) then nil
             else cons (car l) (take (n - 1) (cdr l));
  drop n l = if n = 0 then l
             else if (null l) then nil
             else drop (n - 1) (cdr l)
in take 1 (drop 1 [1, 2, 3])",
    functions: &["take", "drop"],
};

/// map / filter over unknown predicates and functions.
pub const MAP_FILTER: Workload = Workload {
    name: "map_filter",
    source: "letrec
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l));
  filter p l = if (null l) then nil
               else if p (car l) then cons (car l) (filter p (cdr l))
               else filter p (cdr l)
in map (lambda(x). x + 1) (filter (lambda(x). x > 0) [1, 0 - 2, 3])",
    functions: &["map", "filter"],
};

/// concat (flatten): the outer spine is consumed, inner spines escape.
pub const CONCAT: Workload = Workload {
    name: "concat",
    source: "letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  concat ll = if (null ll) then nil
              else append (car ll) (concat (cdr ll))
in concat [[1, 2], [3], [4, 5]]",
    functions: &["append", "concat"],
};

/// Insertion sort: insert rebuilds the prefix, shares the suffix.
pub const INSERTION_SORT: Workload = Workload {
    name: "insertion_sort",
    source: "letrec
  insert x l = if (null l) then cons x nil
               else if x <= car l then cons x l
               else cons (car l) (insert x (cdr l));
  isort l = if (null l) then nil
            else insert (car l) (isort (cdr l))
in isort [3, 1, 2]",
    functions: &["insert", "isort"],
};

/// Merge sort with explicit halving.
pub const MERGE_SORT: Workload = Workload {
    name: "merge_sort",
    source: "letrec
  merge a b = if (null a) then b
              else if (null b) then a
              else if car a <= car b then cons (car a) (merge (cdr a) b)
              else cons (car b) (merge a (cdr b));
  evens l = if (null l) then nil
            else if (null (cdr l)) then l
            else cons (car l) (evens (cdr (cdr l)));
  odds l = if (null l) then nil
           else if (null (cdr l)) then nil
           else cons (car (cdr l)) (odds (cdr (cdr l)));
  msort l = if (null l) then nil
            else if (null (cdr l)) then l
            else merge (msort (evens l)) (msort (odds l))
in msort [3, 1, 4, 1, 5]",
    functions: &["merge", "evens", "odds", "msort"],
};

/// zipadd: consumes two spines, builds a fresh one.
pub const ZIP_ADD: Workload = Workload {
    name: "zip_add",
    source: "letrec
  zipadd a b = if (null a) then nil
               else if (null b) then nil
               else cons (car a + car b) (zipadd (cdr a) (cdr b))
in zipadd [1, 2] [3, 4]",
    functions: &["zipadd"],
};

/// member / assoc-style lookup over nested lists.
pub const MEMBER: Workload = Workload {
    name: "member",
    source: "letrec
  member x l = if (null l) then false
               else if car l = x then true
               else member x (cdr l)
in member 2 [1, 2, 3]",
    functions: &["member"],
};

/// interleave: both spines woven into the result.
pub const INTERLEAVE: Workload = Workload {
    name: "interleave",
    source: "letrec
  inter a b = if (null a) then b
              else cons (car a) (inter b (cdr a))
in inter [1, 3] [2, 4]",
    functions: &["inter"],
};

/// create_list + consumer (the §A.3.3 shape).
pub const CREATE_CONSUME: Workload = Workload {
    name: "create_consume",
    source: "letrec
  create_list n = if n = 0 then nil
                  else cons n (create_list (n - 1));
  sum l = if (null l) then 0 else car l + sum (cdr l)
in sum (create_list 50)",
    functions: &["create_list", "sum"],
};

/// Higher-order compose / twice on list functions.
pub const HIGHER_ORDER: Workload = Workload {
    name: "higher_order",
    source: "letrec
  compose f g = lambda(x). f (g x);
  tail l = cdr l;
  twice f = compose f f
in (twice tail) [1, 2, 3]",
    functions: &["compose", "tail", "twice"],
};

/// replicate: builds a fresh spine sharing one element.
pub const REPLICATE: Workload = Workload {
    name: "replicate",
    source: "letrec
  replicate n x = if n = 0 then nil
                  else cons x (replicate (n - 1) x)
in replicate 3 [7]",
    functions: &["replicate"],
};

/// The tuple extension (§1): partition with a tuple result instead of a
/// two-element list — the escape verdicts must match the appendix's
/// list-encoded SPLIT.
pub const SPLIT_TUPLE: Workload = Workload {
    name: "split_tuple",
    source: "letrec
  split2 p x l h =
    if (null x) then (l, h)
    else if (car x) < p
         then split2 p (cdr x) (cons (car x) l) h
         else split2 p (cdr x) l (cons (car x) h);
  psort x = if (null x) then nil
            else letrec halves = split2 (car x) (cdr x) nil nil;
                        append a b = if (null a) then b
                                     else cons (car a) (append (cdr a) b)
                 in append (psort (fst halves))
                           (cons (car x) (psort (snd halves)))
in psort [5, 2, 7, 1, 3, 4]",
    functions: &["split2", "psort"],
};

/// zip producing a list of tuples, and its inverse projections.
pub const ZIP_TUPLE: Workload = Workload {
    name: "zip_tuple",
    source: "letrec
  zip a b = if (null a) then nil
            else if (null b) then nil
            else cons (car a, car b) (zip (cdr a) (cdr b));
  firsts l = if (null l) then nil
             else cons (fst (car l)) (firsts (cdr l))
in firsts (zip [1, 2] [3, 4])",
    functions: &["zip", "firsts"],
};

/// Association lists of tuples: lookup shares nothing, extend shares the
/// whole table in its result.
pub const ASSOC: Workload = Workload {
    name: "assoc",
    source: "letrec
  lookup k t = if (null t) then 0
               else if fst (car t) = k then snd (car t)
               else lookup k (cdr t);
  extend k v t = cons (k, v) t
in lookup 2 (extend 2 20 (extend 1 10 nil))",
    functions: &["lookup", "extend"],
};

/// unzip: one pass over a list of tuples building two fresh spines,
/// returned as a tuple of lists.
pub const UNZIP: Workload = Workload {
    name: "unzip",
    source: "letrec
  unzip l = if (null l) then (nil, nil)
            else letrec rest = unzip (cdr l)
                 in (cons (fst (car l)) (fst rest),
                    cons (snd (car l)) (snd rest));
  sum l = if (null l) then 0 else car l + sum (cdr l)
in sum (fst (unzip [(1, 2), (3, 4)]))",
    functions: &["unzip", "sum"],
};

/// All corpus programs.
pub const ALL: &[Workload] = &[
    PARTITION_SORT,
    MAP_PAIR,
    REV_NAIVE,
    REV_ACC,
    CONSUMERS,
    TAKE_DROP,
    MAP_FILTER,
    CONCAT,
    INSERTION_SORT,
    MERGE_SORT,
    ZIP_ADD,
    MEMBER,
    INTERLEAVE,
    CREATE_CONSUME,
    HIGHER_ORDER,
    REPLICATE,
    SPLIT_TUPLE,
    ZIP_TUPLE,
    ASSOC,
    UNZIP,
];

/// Renders `[0, 1, ..., n-1]` as an nml list literal (for generated
/// benchmark programs).
pub fn int_list_literal(n: usize) -> String {
    let mut s = String::from("[");
    for i in 0..n {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&i.to_string());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_rendering() {
        assert_eq!(int_list_literal(0), "[]");
        assert_eq!(int_list_literal(3), "[0, 1, 2]");
    }

    #[test]
    fn corpus_names_are_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
