//! # nml-escape-analysis
//!
//! A complete, from-scratch reproduction of **“Escape Analysis on
//! Lists”** (Young Gil Park and Benjamin Goldberg, PLDI 1992) as a Rust
//! workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`syntax`] | the nml language: lexer, parser, AST, pretty printer |
//! | [`types`] | Hindley–Milner inference, `car^s` annotation, monomorphization |
//! | [`escape`] | the paper's analysis: escape domains, abstract semantics, fixpoint engine, global/local tests, sharing, polymorphic invariance |
//! | [`opt`] | the derived optimizations: `DCONS` in-place reuse, stack regions, block allocation |
//! | [`runtime`] | instrumented interpreter: heap, mark–sweep GC, regions, provenance (the exact escape semantics, dynamically) |
//!
//! This facade re-exports each crate under a short name and provides the
//! [`pipeline`] convenience API used by the examples and the `nmlc`
//! driver.
//!
//! ## Quick start
//!
//! ```
//! use nml_escape_analysis::escape::analyze_source;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let analysis = analyze_source(
//!     "letrec append x y = if (null x) then y
//!                          else cons (car x) (append (cdr x) y)
//!      in append [1] [2]",
//! )?;
//! println!("{analysis}");
//! // append: param 1 -> G = <1,0>   (all but the top spine escapes)
//! //         param 2 -> G = <1,1>   (everything escapes)
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use nml_escape as escape;
pub use nml_opt as opt;
pub use nml_runtime as runtime;
pub use nml_serve as serve;
pub use nml_syntax as syntax;
pub use nml_types as types;

pub mod corpus;
pub mod pipeline;
pub mod report;
